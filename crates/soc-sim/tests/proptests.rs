//! Property-based tests for the SoC simulator substrate.

use proptest::prelude::*;
use soc_sim::cluster::ClusterParams;
use soc_sim::config::{DecisionSpace, DrmDecision};
use soc_sim::perf::PerfModel;
use soc_sim::power::{PowerModel, ThermalModel};
use soc_sim::workload::PhaseSpec;

/// Strategy producing an arbitrary valid decision of the Exynos 5422 space.
fn decision_strategy() -> impl Strategy<Value = DrmDecision> {
    (0u8..=4, 1u8..=4, 0usize..19, 0usize..13).prop_map(|(big, little, bf, lf)| {
        let space = DecisionSpace::exynos5422();
        space.decision_from_knob_indices([big as usize, little as usize - 1, bf, lf])
    })
}

/// Strategy producing a physically valid workload phase.
fn phase_strategy() -> impl Strategy<Value = PhaseSpec> {
    (
        1.0e6f64..5.0e8,
        0.0f64..1.0,
        0.01f64..0.6,
        0.0f64..0.2,
        0.0f64..0.3,
        0.0f64..0.3,
        0.3f64..1.0,
    )
        .prop_map(
            |(instructions, parallel, mem, miss, branch, branch_miss, ilp)| PhaseSpec {
                name: "prop".into(),
                instructions,
                parallel_fraction: parallel,
                memory_refs_per_instr: mem,
                l2_miss_rate: miss,
                branch_fraction: branch,
                branch_miss_rate: branch_miss,
                ilp_scale: ilp,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_enumerable_decision_is_valid(d in decision_strategy()) {
        let space = DecisionSpace::exynos5422();
        prop_assert!(space.validate(&d).is_ok());
        // Knob index round-trip.
        let idx = space.knob_indices_of(&d).unwrap();
        prop_assert_eq!(space.decision_from_knob_indices(idx), d);
    }

    #[test]
    fn epoch_time_and_attribution_are_physical(d in decision_strategy(), phase in phase_strategy()) {
        let big = ClusterParams::exynos5422_big();
        let little = ClusterParams::exynos5422_little();
        let perf = PerfModel::default().run_epoch(&big, &little, &d, &phase);
        prop_assert!(perf.time_s > 0.0 && perf.time_s.is_finite());
        prop_assert!(perf.big_utilization >= 0.0 && perf.big_utilization <= 1.0);
        prop_assert!(perf.little_utilization >= 0.0 && perf.little_utilization <= 1.0);
        let attributed = perf.big_instructions + perf.little_instructions;
        prop_assert!((attributed - phase.instructions).abs() / phase.instructions < 1e-6);
        // Busy core-seconds can never exceed wall time times active cores.
        prop_assert!(perf.big_busy_core_s <= d.big_cores as f64 * perf.time_s + 1e-9);
        prop_assert!(perf.little_busy_core_s <= d.little_cores as f64 * perf.time_s + 1e-9);
    }

    #[test]
    fn raising_frequency_never_slows_an_epoch(phase in phase_strategy(), level in 0usize..18) {
        let big = ClusterParams::exynos5422_big();
        let little = ClusterParams::exynos5422_little();
        let model = PerfModel::default();
        let space = DecisionSpace::exynos5422();
        let lo = space.decision_from_knob_indices([4, 0, level, 5]);
        let hi = space.decision_from_knob_indices([4, 0, level + 1, 5]);
        let t_lo = model.run_epoch(&big, &little, &lo, &phase).time_s;
        let t_hi = model.run_epoch(&big, &little, &hi, &phase).time_s;
        prop_assert!(t_hi <= t_lo + 1e-12);
    }

    #[test]
    fn power_is_positive_and_monotone_in_utilization(
        d in decision_strategy(),
        phase in phase_strategy(),
        util in 0.0f64..1.0,
    ) {
        let big = ClusterParams::exynos5422_big();
        let power = PowerModel::default();
        let p_low = power.cluster_power(&big, d.big_freq_mhz, d.big_cores.max(1), util * 0.5);
        let p_high = power.cluster_power(&big, d.big_freq_mhz, d.big_cores.max(1), util);
        prop_assert!(p_low > 0.0);
        prop_assert!(p_high + 1e-12 >= p_low);
        let _ = phase;
    }

    #[test]
    fn epoch_energy_is_power_times_time(d in decision_strategy(), phase in phase_strategy()) {
        let big = ClusterParams::exynos5422_big();
        let little = ClusterParams::exynos5422_little();
        let perf = PerfModel::default().run_epoch(&big, &little, &d, &phase);
        let power = PowerModel::default();
        let breakdown = power.epoch_power(&big, &little, &d, &phase, &perf);
        let energy = power.epoch_energy(&big, &little, &d, &phase, &perf);
        prop_assert!((energy - breakdown.total_w() * perf.time_s).abs() < 1e-9);
        prop_assert!(breakdown.total_w() > 0.0);
    }

    #[test]
    fn thermal_step_is_bounded_by_ambient_and_steady_state(
        power_w in 0.0f64..12.0,
        dt in 0.001f64..5.0,
        start in 25.0f64..110.0,
    ) {
        let thermal = ThermalModel::default();
        let next = thermal.step(start, power_w, dt);
        let steady = thermal.steady_state_c(power_w);
        let lo = start.min(steady) - 1e-9;
        let hi = start.max(steady) + 1e-9;
        prop_assert!(next >= lo && next <= hi, "temperature {next} left [{lo}, {hi}]");
        prop_assert!(thermal.leakage_multiplier(next) >= 1.0);
    }
}
