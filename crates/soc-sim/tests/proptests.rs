//! Property-based tests for the SoC simulator substrate.

use proptest::prelude::*;
use soc_sim::cluster::ClusterParams;
use soc_sim::config::{DecisionSpace, DrmDecision};
use soc_sim::counters::CounterSnapshot;
use soc_sim::perf::PerfModel;
use soc_sim::platform::{DrmController, Platform};
use soc_sim::power::{PowerModel, ThermalModel};
use soc_sim::scenario::{self, Scenario};
use soc_sim::workload::{ApplicationBuilder, PhaseSpec};

/// A controller pinning one fixed decision (test helper).
struct Fixed(DrmDecision);

impl DrmController for Fixed {
    fn decide(&mut self, _: &CounterSnapshot, _: &DrmDecision) -> DrmDecision {
        self.0
    }
}

/// Strategy producing an arbitrary valid decision of the Exynos 5422 space.
fn decision_strategy() -> impl Strategy<Value = DrmDecision> {
    (0u8..=4, 1u8..=4, 0usize..19, 0usize..13).prop_map(|(big, little, bf, lf)| {
        let space = DecisionSpace::exynos5422();
        space.decision_from_knob_indices([big as usize, little as usize - 1, bf, lf])
    })
}

/// Strategy producing a physically valid workload phase.
fn phase_strategy() -> impl Strategy<Value = PhaseSpec> {
    (
        1.0e6f64..5.0e8,
        0.0f64..1.0,
        0.01f64..0.6,
        0.0f64..0.2,
        0.0f64..0.3,
        0.0f64..0.3,
        0.3f64..1.0,
    )
        .prop_map(
            |(instructions, parallel, mem, miss, branch, branch_miss, ilp)| PhaseSpec {
                name: "prop".into(),
                instructions,
                parallel_fraction: parallel,
                memory_refs_per_instr: mem,
                l2_miss_rate: miss,
                branch_fraction: branch,
                branch_miss_rate: branch_miss,
                ilp_scale: ilp,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_enumerable_decision_is_valid(d in decision_strategy()) {
        let space = DecisionSpace::exynos5422();
        prop_assert!(space.validate(&d).is_ok());
        // Knob index round-trip.
        let idx = space.knob_indices_of(&d).unwrap();
        prop_assert_eq!(space.decision_from_knob_indices(idx), d);
    }

    #[test]
    fn epoch_time_and_attribution_are_physical(d in decision_strategy(), phase in phase_strategy()) {
        let big = ClusterParams::exynos5422_big();
        let little = ClusterParams::exynos5422_little();
        let perf = PerfModel::default().run_epoch(&big, &little, &d, &phase);
        prop_assert!(perf.time_s > 0.0 && perf.time_s.is_finite());
        prop_assert!(perf.big_utilization >= 0.0 && perf.big_utilization <= 1.0);
        prop_assert!(perf.little_utilization >= 0.0 && perf.little_utilization <= 1.0);
        let attributed = perf.big_instructions + perf.little_instructions;
        prop_assert!((attributed - phase.instructions).abs() / phase.instructions < 1e-6);
        // Busy core-seconds can never exceed wall time times active cores.
        prop_assert!(perf.big_busy_core_s <= d.big_cores as f64 * perf.time_s + 1e-9);
        prop_assert!(perf.little_busy_core_s <= d.little_cores as f64 * perf.time_s + 1e-9);
    }

    #[test]
    fn raising_frequency_never_slows_an_epoch(phase in phase_strategy(), level in 0usize..18) {
        let big = ClusterParams::exynos5422_big();
        let little = ClusterParams::exynos5422_little();
        let model = PerfModel::default();
        let space = DecisionSpace::exynos5422();
        let lo = space.decision_from_knob_indices([4, 0, level, 5]);
        let hi = space.decision_from_knob_indices([4, 0, level + 1, 5]);
        let t_lo = model.run_epoch(&big, &little, &lo, &phase).time_s;
        let t_hi = model.run_epoch(&big, &little, &hi, &phase).time_s;
        prop_assert!(t_hi <= t_lo + 1e-12);
    }

    #[test]
    fn power_is_positive_and_monotone_in_utilization(
        d in decision_strategy(),
        phase in phase_strategy(),
        util in 0.0f64..1.0,
    ) {
        let big = ClusterParams::exynos5422_big();
        let power = PowerModel::default();
        let p_low = power.cluster_power(&big, d.big_freq_mhz, d.big_cores.max(1), util * 0.5);
        let p_high = power.cluster_power(&big, d.big_freq_mhz, d.big_cores.max(1), util);
        prop_assert!(p_low > 0.0);
        prop_assert!(p_high + 1e-12 >= p_low);
        let _ = phase;
    }

    #[test]
    fn epoch_energy_is_power_times_time(d in decision_strategy(), phase in phase_strategy()) {
        let big = ClusterParams::exynos5422_big();
        let little = ClusterParams::exynos5422_little();
        let perf = PerfModel::default().run_epoch(&big, &little, &d, &phase);
        let power = PowerModel::default();
        let breakdown = power.epoch_power(&big, &little, &d, &phase, &perf);
        let energy = power.epoch_energy(&big, &little, &d, &phase, &perf);
        prop_assert!((energy - breakdown.total_w() * perf.time_s).abs() < 1e-9);
        prop_assert!(breakdown.total_w() > 0.0);
    }

    #[test]
    fn power_and_energy_are_nonnegative_and_monotone_in_frequency_at_fixed_work(
        phase in phase_strategy(),
        cores in 1u8..=4,
        util in 0.0f64..=1.0,
        level in 0usize..18,
    ) {
        // Cluster power at a fixed utilization and core count never decreases when only the
        // frequency (and its rail voltage) rises.
        let big = ClusterParams::exynos5422_big();
        let power = PowerModel::default();
        let lo_mhz = big.opp_at_level(level).frequency_mhz;
        let hi_mhz = big.opp_at_level(level + 1).frequency_mhz;
        let p_lo = power.cluster_power(&big, lo_mhz, cores, util);
        let p_hi = power.cluster_power(&big, hi_mhz, cores, util);
        prop_assert!(p_lo >= 0.0 && p_hi >= 0.0);
        prop_assert!(p_hi + 1e-12 >= p_lo, "power fell from {p_lo} to {p_hi} W");

        // Whole-epoch energy for the same fixed work is non-negative at every frequency.
        let little = ClusterParams::exynos5422_little();
        let space = DecisionSpace::exynos5422();
        let d = space.decision_from_knob_indices([cores as usize, 2, level, 6]);
        let perf = PerfModel::default().run_epoch(&big, &little, &d, &phase);
        let energy = power.epoch_energy(&big, &little, &d, &phase, &perf);
        prop_assert!(energy >= 0.0 && energy.is_finite());
    }

    #[test]
    fn counters_conserve_instructions_across_epochs(
        d in decision_strategy(),
        epochs in 3usize..20,
        seed in 0u64..1000,
    ) {
        // Whatever the configuration, noise seed or thermal trajectory, the retired
        // instructions reported by the per-epoch counters sum to exactly the work the
        // application carried in.
        let platform = Platform::odroid_xu3();
        let app = ApplicationBuilder::new("conserve")
            .phase(PhaseSpec {
                name: "p".into(),
                instructions: 60e6,
                parallel_fraction: 0.5,
                memory_refs_per_instr: 0.25,
                l2_miss_rate: 0.04,
                branch_fraction: 0.1,
                branch_miss_rate: 0.05,
                ilp_scale: 0.85,
            }, epochs)
            .jitter(0.2)
            .seed(seed)
            .build()
            .unwrap();
        let run = platform.run_application(&app, &mut Fixed(d), seed).unwrap();
        let retired: f64 = run.epochs.iter().map(|e| e.counters.instructions_retired).sum();
        let carried = app.total_instructions();
        prop_assert!(
            (retired - carried).abs() / carried < 1e-9,
            "counters retired {retired} of {carried} instructions"
        );
    }

    #[test]
    fn thermal_trajectory_stays_bounded_and_respects_the_throttle_cap(
        level in 10usize..19,
        epochs in 20usize..60,
        seed in 0u64..100,
    ) {
        // Run a hot fixed configuration end to end: the recorded temperature may never
        // exceed the steady state of the hottest observed power draw, and any epoch that
        // starts throttled must run at or below the Big throttle ceiling.
        let platform = Platform::odroid_xu3();
        let thermal = *platform.spec().thermal_model();
        let space = platform.spec().decision_space().clone();
        let d = space.decision_from_knob_indices([4, 3, level, 12]);
        let app = ApplicationBuilder::new("hot")
            .phase(PhaseSpec {
                name: "burn".into(),
                instructions: 120e6,
                parallel_fraction: 0.9,
                memory_refs_per_instr: 0.1,
                l2_miss_rate: 0.01,
                branch_fraction: 0.05,
                branch_miss_rate: 0.02,
                ilp_scale: 0.95,
            }, epochs)
            .jitter(0.05)
            .seed(seed)
            .build()
            .unwrap();
        let run = platform.run_application(&app, &mut Fixed(d), seed).unwrap();
        let max_power = run.epochs.iter().map(|e| e.power_w).fold(0.0, f64::max);
        let ceiling = thermal.steady_state_c(max_power) + 1e-9;
        prop_assert!(run.peak_temperature_c <= ceiling);
        prop_assert!(run.peak_temperature_c >= thermal.ambient_c);
        let mut previous_temp = thermal.ambient_c;
        for epoch in &run.epochs {
            prop_assert!(epoch.temperature_c <= ceiling && epoch.temperature_c.is_finite());
            if thermal.is_throttling(previous_temp) {
                prop_assert!(
                    epoch.decision.big_freq_mhz <= thermal.throttle_big_freq_mhz,
                    "epoch starting at {previous_temp} C ran the Big cluster at {} MHz",
                    epoch.decision.big_freq_mhz
                );
            }
            previous_temp = epoch.temperature_c;
        }
    }

    #[test]
    fn scenario_serde_round_trip_is_lossless(
        index in 0usize..14,
        thermal_limit in 30.0f64..120.0,
        power_budget in 0.05f64..8.0,
        deadline in 0.5f64..60.0,
        weight in 0.0f64..10.0,
        mask in 0u8..8,
        seed in 0u64..u64::MAX,
    ) {
        // Start from a registered scenario, scramble every constraint and the workload seed
        // with arbitrary floats/ints, and demand bit-exact JSON round-tripping.
        let registry = scenario::registry();
        let mut s = registry[index % registry.len()].clone();
        s.constraints.thermal_limit_c = (mask & 1 != 0).then_some(thermal_limit);
        s.constraints.power_budget_w = (mask & 2 != 0).then_some(power_budget);
        s.constraints.deadline_s = (mask & 4 != 0).then_some(deadline);
        s.constraints.penalty_weight = weight;
        s.workload.seed = seed;
        let back = Scenario::from_json(&s.to_json()).expect("round-trip parses");
        prop_assert_eq!(back, s);
    }

    #[test]
    fn thermal_step_is_bounded_by_ambient_and_steady_state(
        power_w in 0.0f64..12.0,
        dt in 0.001f64..5.0,
        start in 25.0f64..110.0,
    ) {
        let thermal = ThermalModel::default();
        let next = thermal.step(start, power_w, dt);
        let steady = thermal.steady_state_c(power_w);
        let lo = start.min(steady) - 1e-9;
        let hi = start.max(steady) + 1e-9;
        prop_assert!(next >= lo && next <= hi, "temperature {next} left [{lo}, {hi}]");
        prop_assert!(thermal.leakage_multiplier(next) >= 1.0);
    }
}
