//! Scenarios: named (platform, workload, constraints) triples and their registry.
//!
//! The paper evaluates its learned DRM policies across many benchmarks on one board. This
//! module makes "which platform, running what, under which limits" a first-class, enumerable
//! and serializable axis: a [`Scenario`] names a [`PlatformPreset`], a [`WorkloadSpec`]
//! (either a paper benchmark or one of the synthetic [`crate::workload`] generators) and a
//! set of [`ScenarioConstraints`] (thermal / power / deadline limits with a penalty weight).
//!
//! The [`registry`] enumerates the stock scenarios every change to the simulator, governors
//! or optimizers is regression-tested against (`tests/scenario_matrix.rs` snapshots each of
//! them under every stock governor). Scenarios round-trip losslessly through JSON via
//! [`Scenario::to_json`] / [`Scenario::from_json`], so external scenario files can be loaded
//! by the bench harness with `--scenario`.
//!
//! # Adding a scenario
//!
//! Append a [`Scenario`] to [`registry`] (give it a unique kebab-case name), then regenerate
//! the golden matrix with `UPDATE_GOLDENS=1 cargo test --test scenario_matrix` and commit
//! both the code and the refreshed goldens.

use crate::apps::Benchmark;
use crate::platform::{Platform, RunSummary, SocSpec};
use crate::workload::{self, Application, PhaseSpec};
use crate::{Result, SocError};
use fastmath::Precision;
use serde::{Deserialize, Serialize};

/// A named, fully static platform definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformPreset {
    /// The Exynos-5422-like Odroid-XU3 board of the paper (4 Big + 4 Little).
    OdroidXu3,
    /// Asymmetric phone-class hexa-core (2 Big + 4 Little) with per-cluster thermal
    /// tracking and non-zero DVFS switch energy ([`SocSpec::hexa_asym`]).
    HexaAsym,
    /// Wearable-class low-power SoC (1 + 2 cores) with a skin-temperature trip point
    /// ([`SocSpec::wearable`]).
    Wearable,
}

impl PlatformPreset {
    /// Every preset, in registry order.
    pub const ALL: [PlatformPreset; 3] = [
        PlatformPreset::OdroidXu3,
        PlatformPreset::HexaAsym,
        PlatformPreset::Wearable,
    ];

    /// Stable lower-case name used in reports and scenario files.
    pub fn name(&self) -> &'static str {
        match self {
            PlatformPreset::OdroidXu3 => "odroid-xu3",
            PlatformPreset::HexaAsym => "hexa-asym",
            PlatformPreset::Wearable => "wearable",
        }
    }

    /// Looks a preset up by its [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<PlatformPreset> {
        PlatformPreset::ALL
            .iter()
            .copied()
            .find(|p| p.name() == name)
    }

    /// The full static SoC description of this preset.
    pub fn spec(&self) -> SocSpec {
        match self {
            PlatformPreset::OdroidXu3 => SocSpec::exynos5422(),
            PlatformPreset::HexaAsym => SocSpec::hexa_asym(),
            PlatformPreset::Wearable => SocSpec::wearable(),
        }
    }

    /// A runnable platform built from this preset.
    pub fn platform(&self) -> Platform {
        Platform::new(self.spec())
    }
}

impl std::fmt::Display for PlatformPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which evaluation backend a scenario (and the `parmis` evaluator built from it) should
/// route policy runs through.
///
/// The backend implementations live in the `parmis` crate (`parmis::backend`); this enum is
/// the serializable *selection* that travels with scenario JSON. It is optional in
/// [`Scenario`] — absent means "the consumer's default" (the analytic simulator) — so
/// scenario files written before the backend axis existed still parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// The analytic streaming simulator (`DecisionTable` + `EpochSink` engine).
    AnalyticSim,
    /// Replay of recorded epoch-stream fixtures ([`crate::trace::TraceStore`]).
    TraceReplay,
    /// Synthetic perf-counter profiling folded through the collector/stats split
    /// ([`crate::counters::CounterCollector`] / [`crate::counters::CounterStats`]).
    CounterProfile,
    /// Deterministic fault-injection decorator layered over another backend (robustness
    /// drills; selecting it by kind wraps the consumer's default backend with a benign
    /// schedule unless the consumer configures one explicitly).
    FaultInject,
}

impl BackendKind {
    /// Every backend kind, in declaration order.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::AnalyticSim,
        BackendKind::TraceReplay,
        BackendKind::CounterProfile,
        BackendKind::FaultInject,
    ];

    /// Stable kebab-case name used in reports and scenario files.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::AnalyticSim => "analytic-sim",
            BackendKind::TraceReplay => "trace-replay",
            BackendKind::CounterProfile => "counter-profile",
            BackendKind::FaultInject => "fault-inject",
        }
    }

    /// Looks a kind up by its [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<BackendKind> {
        BackendKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which generator a [`WorkloadSpec`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// The named paper benchmark, verbatim ([`Benchmark::application`]).
    Benchmark,
    /// Bursty interactive load derived from the benchmark's lead phase
    /// ([`workload::bursty`]; `intensity` = burst scale).
    Bursty,
    /// Periodic duty-cycled load ([`workload::periodic`]; `intensity` = modulation depth).
    Periodic,
    /// Io-wait-dominated load ([`workload::io_idle`]; `intensity` = idle fraction).
    IoIdle,
    /// Deterministic multi-app interleave of all named benchmarks
    /// ([`workload::interleave`]).
    Interleave,
}

/// Serializable description of a scenario's workload.
///
/// The same struct covers every generator; fields a generator does not use are ignored (and
/// conventionally zero). `benchmarks` holds [`Benchmark::name`]s: one entry for everything
/// except [`WorkloadKind::Interleave`], which takes two or more.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Which generator to run.
    pub kind: WorkloadKind,
    /// Source benchmark name(s).
    pub benchmarks: Vec<String>,
    /// Epoch count for the synthetic generators (ignored for `Benchmark`/`Interleave`).
    pub epochs: usize,
    /// Period in epochs for `Bursty` (burst spacing) and `Periodic` (duty cycle).
    pub period: usize,
    /// Generator-specific intensity: burst scale, modulation depth or idle fraction.
    pub intensity: f64,
    /// Relative instruction-count jitter in `[0, 0.5]`.
    pub jitter: f64,
    /// Seed of the deterministic generator noise.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The named paper benchmark, verbatim.
    pub fn benchmark(benchmark: Benchmark) -> Self {
        WorkloadSpec {
            kind: WorkloadKind::Benchmark,
            benchmarks: vec![benchmark.name().to_string()],
            epochs: 0,
            period: 0,
            intensity: 0.0,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Bursty load built from `benchmark`'s lead phase.
    pub fn bursty(
        benchmark: Benchmark,
        burst_scale: f64,
        period: usize,
        epochs: usize,
        seed: u64,
    ) -> Self {
        WorkloadSpec {
            kind: WorkloadKind::Bursty,
            benchmarks: vec![benchmark.name().to_string()],
            epochs,
            period,
            intensity: burst_scale,
            jitter: 0.08,
            seed,
        }
    }

    /// Periodic duty-cycled load built from `benchmark`'s lead phase.
    pub fn periodic(
        benchmark: Benchmark,
        depth: f64,
        period: usize,
        epochs: usize,
        seed: u64,
    ) -> Self {
        WorkloadSpec {
            kind: WorkloadKind::Periodic,
            benchmarks: vec![benchmark.name().to_string()],
            epochs,
            period,
            intensity: depth,
            jitter: 0.05,
            seed,
        }
    }

    /// Io-wait-dominated load built from `benchmark`'s lead phase.
    pub fn io_idle(benchmark: Benchmark, idle_fraction: f64, epochs: usize, seed: u64) -> Self {
        WorkloadSpec {
            kind: WorkloadKind::IoIdle,
            benchmarks: vec![benchmark.name().to_string()],
            epochs,
            period: 0,
            intensity: idle_fraction,
            jitter: 0.06,
            seed,
        }
    }

    /// Deterministic interleave of several benchmarks.
    pub fn interleave(benchmarks: &[Benchmark], seed: u64) -> Self {
        WorkloadSpec {
            kind: WorkloadKind::Interleave,
            benchmarks: benchmarks.iter().map(|b| b.name().to_string()).collect(),
            epochs: 0,
            period: 0,
            intensity: 0.0,
            jitter: 0.0,
            seed,
        }
    }

    fn resolve(&self, index: usize) -> Result<Benchmark> {
        let name = self
            .benchmarks
            .get(index)
            .ok_or_else(|| SocError::Scenario {
                reason: format!(
                    "workload needs at least {} benchmark name(s), got {}",
                    index + 1,
                    self.benchmarks.len()
                ),
            })?;
        Benchmark::from_name(name).ok_or_else(|| SocError::Scenario {
            reason: format!("unknown benchmark `{name}`"),
        })
    }

    /// The lead phase of the first named benchmark — the seed material for the generators.
    fn base_phase(&self) -> Result<PhaseSpec> {
        let app = self.resolve(0)?.application();
        Ok(app.epochs[0].clone())
    }

    /// Checks the generator parameters a loaded spec might carry out of range, so a
    /// misconfigured JSON file fails loudly instead of silently degenerating (e.g. a zero
    /// bursty period would make *every* epoch a burst).
    fn validate_generator_params(&self) -> Result<()> {
        let fail = |reason: String| Err(SocError::Scenario { reason });
        if !self.intensity.is_finite() || !self.jitter.is_finite() {
            return fail(format!(
                "intensity ({}) and jitter ({}) must be finite",
                self.intensity, self.jitter
            ));
        }
        match self.kind {
            WorkloadKind::Bursty if self.period < 2 => {
                fail(format!("bursty needs period >= 2, got {}", self.period))
            }
            WorkloadKind::Periodic if self.period < 2 => {
                fail(format!("periodic needs period >= 2, got {}", self.period))
            }
            _ => Ok(()),
        }
    }

    /// Expands the spec into a concrete [`Application`].
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Scenario`] for unknown benchmark names or out-of-range generator
    /// parameters, and propagates generator validation failures.
    pub fn build(&self) -> Result<Application> {
        self.validate_generator_params()?;
        match self.kind {
            WorkloadKind::Benchmark => Ok(self.resolve(0)?.application()),
            WorkloadKind::Bursty => workload::bursty(
                self.workload_name(),
                self.base_phase()?,
                self.intensity,
                self.period,
                (self.period / 4).max(1),
                self.epochs,
                self.jitter,
                self.seed,
            ),
            WorkloadKind::Periodic => workload::periodic(
                self.workload_name(),
                self.base_phase()?,
                self.period,
                self.intensity,
                self.epochs,
                self.jitter,
                self.seed,
            ),
            WorkloadKind::IoIdle => workload::io_idle(
                self.workload_name(),
                self.base_phase()?,
                self.intensity,
                self.epochs,
                self.jitter,
                self.seed,
            ),
            WorkloadKind::Interleave => {
                if self.benchmarks.len() < 2 {
                    return Err(SocError::Scenario {
                        reason: "interleave needs at least two benchmarks".into(),
                    });
                }
                let apps = (0..self.benchmarks.len())
                    .map(|i| self.resolve(i).map(|b| b.application()))
                    .collect::<Result<Vec<_>>>()?;
                workload::interleave(self.workload_name(), &apps, self.seed)
            }
        }
    }

    /// Human-readable name of the generated application.
    fn workload_name(&self) -> String {
        let prefix = match self.kind {
            WorkloadKind::Benchmark => "bench",
            WorkloadKind::Bursty => "bursty",
            WorkloadKind::Periodic => "periodic",
            WorkloadKind::IoIdle => "io-idle",
            WorkloadKind::Interleave => "interleave",
        };
        format!("{prefix}-{}", self.benchmarks.join("+"))
    }
}

/// Run-level limits a scenario imposes, each optional.
///
/// Violations are reported as a single scalar penalty: the sum of the *relative* overshoots
/// of every active limit, scaled by `penalty_weight`. The `parmis` evaluators add this
/// penalty to every objective, steering the search away from configurations that break the
/// scenario's constraints without hard-rejecting them (Algorithm 1 only needs objective
/// values).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConstraints {
    /// Peak junction temperature limit in °C.
    pub thermal_limit_c: Option<f64>,
    /// Average power budget in watts.
    pub power_budget_w: Option<f64>,
    /// Execution-time deadline in seconds.
    pub deadline_s: Option<f64>,
    /// Multiplier applied to the summed relative violations.
    pub penalty_weight: f64,
}

impl Default for ScenarioConstraints {
    fn default() -> Self {
        ScenarioConstraints::unconstrained()
    }
}

impl ScenarioConstraints {
    /// No limits: the penalty is always zero.
    pub fn unconstrained() -> Self {
        ScenarioConstraints {
            thermal_limit_c: None,
            power_budget_w: None,
            deadline_s: None,
            penalty_weight: 1.0,
        }
    }

    /// Only a peak-temperature limit.
    pub fn thermal(limit_c: f64, penalty_weight: f64) -> Self {
        ScenarioConstraints {
            thermal_limit_c: Some(limit_c),
            penalty_weight,
            ..ScenarioConstraints::unconstrained()
        }
    }

    /// Summed relative violation of every active limit, scaled by the penalty weight
    /// (zero when the run satisfies the scenario).
    pub fn penalty(&self, summary: &RunSummary) -> f64 {
        self.penalty_from_metrics(
            summary.execution_time_s,
            summary.average_power_w,
            summary.peak_temperature_c,
        )
    }

    /// [`penalty`](Self::penalty) from the raw run metrics, for streaming runs
    /// ([`crate::platform::Platform::run_application_with`]) that never materialize a
    /// [`RunSummary`]. Same float-operation order, bit-identical result.
    pub fn penalty_from_metrics(
        &self,
        execution_time_s: f64,
        average_power_w: f64,
        peak_temperature_c: f64,
    ) -> f64 {
        let overshoot = |value: f64, limit: Option<f64>| match limit {
            Some(limit) if limit > 0.0 => ((value - limit) / limit).max(0.0),
            _ => 0.0,
        };
        self.penalty_weight
            * (overshoot(peak_temperature_c, self.thermal_limit_c)
                + overshoot(average_power_w, self.power_budget_w)
                + overshoot(execution_time_s, self.deadline_s))
    }

    /// `true` when the run violates none of the limits.
    ///
    /// Checks the raw limits directly — deliberately independent of `penalty_weight`, so a
    /// zero (or even negative) weight cannot make a violating run look compliant.
    pub fn is_satisfied(&self, summary: &RunSummary) -> bool {
        let within = |value: f64, limit: Option<f64>| limit.map_or(true, |limit| value <= limit);
        within(summary.peak_temperature_c, self.thermal_limit_c)
            && within(summary.average_power_w, self.power_budget_w)
            && within(summary.execution_time_s, self.deadline_s)
    }
}

/// A named (platform, workload, constraints) triple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Unique kebab-case identifier (`--scenario` argument, golden-file key).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Which platform the scenario runs on.
    pub platform: PlatformPreset,
    /// What the platform runs.
    pub workload: WorkloadSpec,
    /// Which limits apply.
    pub constraints: ScenarioConstraints,
    /// Which evaluation backend runs this scenario's policies (`None` = consumer default,
    /// the analytic simulator). Optional so pre-backend scenario JSON still parses.
    pub backend: Option<BackendKind>,
    /// Which math tier this scenario's platform runs on (`None` = consumer default,
    /// [`Precision::SeedExact`]). Optional so pre-precision scenario JSON still parses.
    pub precision: Option<Precision>,
}

impl Scenario {
    /// A runnable platform for this scenario, on the scenario's pinned precision tier
    /// (or [`Precision::SeedExact`] when the scenario does not pin one).
    pub fn platform(&self) -> Platform {
        self.platform
            .platform()
            .with_precision(self.precision.unwrap_or_default())
    }

    /// The concrete application this scenario runs.
    ///
    /// # Errors
    ///
    /// Propagates [`WorkloadSpec::build`] failures.
    pub fn application(&self) -> Result<Application> {
        self.workload.build()
    }

    /// Pretty-printed JSON form of the scenario.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario fields are always finite")
    }

    /// Parses a scenario from JSON text (the inverse of [`to_json`](Self::to_json)).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Scenario`] for malformed JSON or a shape mismatch.
    pub fn from_json(text: &str) -> Result<Self> {
        serde_json::from_str(text).map_err(|e| SocError::Scenario {
            reason: e.to_string(),
        })
    }
}

/// Builds the stock scenario registry (14 scenarios spanning all three platform presets and
/// all five workload kinds).
pub fn registry() -> Vec<Scenario> {
    let scenario = |name: &str,
                    description: &str,
                    platform: PlatformPreset,
                    workload: WorkloadSpec,
                    constraints: ScenarioConstraints| Scenario {
        name: name.to_string(),
        description: description.to_string(),
        platform,
        workload,
        constraints,
        backend: None,
        precision: None,
    };
    vec![
        scenario(
            "odroid-qsort-baseline",
            "The paper's headline single-app setup: qsort on the Odroid-XU3",
            PlatformPreset::OdroidXu3,
            WorkloadSpec::benchmark(Benchmark::Qsort),
            ScenarioConstraints::unconstrained(),
        ),
        scenario(
            "odroid-dijkstra-memory",
            "Memory-latency-bound pointer chasing on the Odroid-XU3",
            PlatformPreset::OdroidXu3,
            WorkloadSpec::benchmark(Benchmark::Dijkstra),
            ScenarioConstraints::unconstrained(),
        ),
        scenario(
            "odroid-pca-thermal",
            "Sustained data-parallel PCA against an 80 C junction limit",
            PlatformPreset::OdroidXu3,
            WorkloadSpec::benchmark(Benchmark::Pca),
            ScenarioConstraints::thermal(80.0, 4.0),
        ),
        scenario(
            "odroid-bursty-web",
            "Interactive bursty load (qsort-derived) on the Odroid-XU3",
            PlatformPreset::OdroidXu3,
            WorkloadSpec::bursty(Benchmark::Qsort, 6.0, 10, 60, 21),
            ScenarioConstraints::unconstrained(),
        ),
        scenario(
            "odroid-periodic-media",
            "Duty-cycled media pipeline (motionest-derived) on the Odroid-XU3",
            PlatformPreset::OdroidXu3,
            WorkloadSpec::periodic(Benchmark::MotionEst, 0.7, 12, 60, 22),
            ScenarioConstraints::unconstrained(),
        ),
        scenario(
            "odroid-io-idle-sync",
            "Io-wait-dominated background sync (sha-derived) on the Odroid-XU3",
            PlatformPreset::OdroidXu3,
            WorkloadSpec::io_idle(Benchmark::Sha, 0.55, 60, 23),
            ScenarioConstraints::unconstrained(),
        ),
        scenario(
            "odroid-multiapp-mix",
            "Three-app interleave (qsort + kmeans + sha) on the Odroid-XU3",
            PlatformPreset::OdroidXu3,
            WorkloadSpec::interleave(&[Benchmark::Qsort, Benchmark::Kmeans, Benchmark::Sha], 24),
            ScenarioConstraints::unconstrained(),
        ),
        scenario(
            "hexa-kmeans-parallel",
            "Data-parallel kmeans on the asymmetric hexa-core",
            PlatformPreset::HexaAsym,
            WorkloadSpec::benchmark(Benchmark::Kmeans),
            ScenarioConstraints::unconstrained(),
        ),
        scenario(
            "hexa-spectral-thermal",
            "Dense linear algebra against the hexa-core's 82 C hottest-junction trip",
            PlatformPreset::HexaAsym,
            WorkloadSpec::benchmark(Benchmark::Spectral),
            ScenarioConstraints::thermal(82.0, 4.0),
        ),
        scenario(
            "hexa-bursty-app-switch",
            "Bursty foreground/background app switching on the hexa-core",
            PlatformPreset::HexaAsym,
            WorkloadSpec::bursty(Benchmark::Fft, 5.0, 8, 64, 25),
            ScenarioConstraints::unconstrained(),
        ),
        scenario(
            "hexa-multiapp-deadline",
            "Two-app interleave (fft + aes) with a soft deadline on the hexa-core",
            PlatformPreset::HexaAsym,
            WorkloadSpec::interleave(&[Benchmark::Fft, Benchmark::Aes], 26),
            ScenarioConstraints {
                deadline_s: Some(8.0),
                penalty_weight: 2.0,
                ..ScenarioConstraints::unconstrained()
            },
        ),
        scenario(
            "wearable-sensor-periodic",
            "Periodic sensor fusion (basicmath-derived) on the wearable",
            PlatformPreset::Wearable,
            WorkloadSpec::periodic(Benchmark::Basicmath, 0.8, 10, 80, 27),
            ScenarioConstraints {
                power_budget_w: Some(0.25),
                penalty_weight: 2.0,
                ..ScenarioConstraints::unconstrained()
            },
        ),
        scenario(
            "wearable-io-idle-radio",
            "Radio-bound io-idle trickle (stringsearch-derived) on the wearable",
            PlatformPreset::Wearable,
            WorkloadSpec::io_idle(Benchmark::StringSearch, 0.7, 80, 28),
            ScenarioConstraints::unconstrained(),
        ),
        scenario(
            "wearable-crypto-skin-temp",
            "Sustained crypto (sha) against the wearable's 38 C skin-temperature limit",
            PlatformPreset::Wearable,
            WorkloadSpec::benchmark(Benchmark::Sha),
            ScenarioConstraints::thermal(38.0, 4.0),
        ),
    ]
}

/// Names of every registered scenario, in registry order.
pub fn names() -> Vec<String> {
    registry().into_iter().map(|s| s.name).collect()
}

/// Looks a registered scenario up by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_at_least_twelve_unique_buildable_scenarios() {
        let all = registry();
        assert!(all.len() >= 12, "only {} scenarios registered", all.len());
        let names: std::collections::HashSet<&str> = all.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), all.len(), "scenario names must be unique");
        for s in &all {
            let app = s.application().unwrap_or_else(|e| {
                panic!("scenario {} failed to build its workload: {e}", s.name)
            });
            assert!(app.epoch_count() >= 5, "{}: workload too short", s.name);
            let platform = s.platform();
            assert!(!platform.spec().decision_space().is_empty());
            assert_eq!(by_name(&s.name).as_ref(), Some(s));
        }
        // All presets and workload kinds are exercised.
        for preset in PlatformPreset::ALL {
            assert!(all.iter().any(|s| s.platform == preset), "{preset} unused");
        }
        for kind in [
            WorkloadKind::Benchmark,
            WorkloadKind::Bursty,
            WorkloadKind::Periodic,
            WorkloadKind::IoIdle,
            WorkloadKind::Interleave,
        ] {
            assert!(all.iter().any(|s| s.workload.kind == kind));
        }
        assert_eq!(super::names().len(), all.len());
        assert!(by_name("not-a-scenario").is_none());
    }

    #[test]
    fn scenarios_round_trip_through_json() {
        for s in registry() {
            let json = s.to_json();
            let back = Scenario::from_json(&json)
                .unwrap_or_else(|e| panic!("{} failed to re-parse: {e}", s.name));
            assert_eq!(back, s, "lossless round-trip for {}", s.name);
        }
        assert!(Scenario::from_json("{").is_err());
        assert!(Scenario::from_json("{\"name\":\"x\"}").is_err());
    }

    #[test]
    fn backend_selection_round_trips_and_legacy_json_stays_parseable() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(BackendKind::from_name("nope"), None);
        for tier in Precision::ALL {
            assert_eq!(Precision::from_name(tier.name()), Some(tier));
            assert_eq!(tier.to_string(), tier.name());
        }
        assert_eq!(Precision::from_name("exactish"), None);

        // The registry default pins neither optional axis; every (backend, precision)
        // combination — pinned or absent — survives the JSON round trip.
        let pristine = by_name("odroid-qsort-baseline").unwrap();
        assert_eq!(pristine.backend, None);
        assert_eq!(pristine.precision, None);
        let backends = [
            None,
            Some(BackendKind::TraceReplay),
            Some(BackendKind::AnalyticSim),
        ];
        let precisions = [None, Some(Precision::SeedExact), Some(Precision::Fast)];
        for backend in backends {
            for precision in precisions {
                let mut s = pristine.clone();
                s.backend = backend;
                s.precision = precision;
                let back = Scenario::from_json(&s.to_json()).unwrap();
                assert_eq!(back.backend, backend);
                assert_eq!(back.precision, precision);
                assert_eq!(
                    back, s,
                    "round trip for backend {backend:?} / {precision:?}"
                );
            }
        }

        // A pinned precision reaches the scenario's platform; absent means SeedExact.
        assert_eq!(pristine.platform().precision(), Precision::SeedExact);
        let mut fast = pristine.clone();
        fast.precision = Some(Precision::Fast);
        assert_eq!(fast.platform().precision(), Precision::Fast);

        // Scenario files written before these axes existed still parse, as None: strip
        // the `backend` key (pre-PR 6 files), the `precision` key (pre-fast-tier files),
        // and both at once (pre-PR 6 files again), and re-parse each variant.
        let strip = |keys: &[&str]| {
            let mut value = serde_json::from_str_value(&pristine.to_json()).unwrap();
            if let serde::Value::Object(fields) = &mut value {
                let before = fields.len();
                fields.retain(|(k, _)| !keys.contains(&k.as_str()));
                assert_eq!(fields.len(), before - keys.len());
            }
            value
        };
        for missing in [
            &["backend"][..],
            &["precision"][..],
            &["backend", "precision"][..],
        ] {
            let value = strip(missing);
            let legacy = <Scenario as serde::Deserialize>::from_json_value(&value)
                .unwrap_or_else(|e| panic!("legacy JSON without {missing:?} must parse: {e}"));
            assert_eq!(legacy, pristine, "legacy JSON without {missing:?}");
            assert_eq!(legacy.backend, None);
            assert_eq!(legacy.precision, None);
        }
    }

    #[test]
    fn constraint_penalties_scale_with_relative_overshoot() {
        let mut summary = RunSummary {
            application: "a".into(),
            controller: "c".into(),
            execution_time_s: 10.0,
            energy_j: 20.0,
            average_power_w: 2.0,
            ppw: 0.5,
            peak_temperature_c: 90.0,
            epochs: Vec::new(),
        };
        let free = ScenarioConstraints::unconstrained();
        assert_eq!(free.penalty(&summary), 0.0);
        assert!(free.is_satisfied(&summary));

        let thermal = ScenarioConstraints::thermal(80.0, 4.0);
        assert!((thermal.penalty(&summary) - 4.0 * (10.0 / 80.0)).abs() < 1e-12);
        assert_eq!(
            thermal.penalty(&summary),
            thermal.penalty_from_metrics(
                summary.execution_time_s,
                summary.average_power_w,
                summary.peak_temperature_c
            ),
            "metrics form must be bit-identical to the summary form"
        );
        assert!(!thermal.is_satisfied(&summary));
        summary.peak_temperature_c = 75.0;
        assert!(thermal.is_satisfied(&summary));

        let tight = ScenarioConstraints {
            power_budget_w: Some(1.0),
            deadline_s: Some(5.0),
            penalty_weight: 1.0,
            thermal_limit_c: None,
        };
        // power overshoot (2-1)/1 = 1, deadline overshoot (10-5)/5 = 1.
        assert!((tight.penalty(&summary) - 2.0).abs() < 1e-12);

        // A zero penalty weight silences the penalty but must NOT make a violating run
        // look compliant: is_satisfied checks the raw limits.
        summary.peak_temperature_c = 100.0;
        let muted = ScenarioConstraints {
            penalty_weight: 0.0,
            ..ScenarioConstraints::thermal(80.0, 4.0)
        };
        assert_eq!(muted.penalty(&summary), 0.0);
        assert!(!muted.is_satisfied(&summary));
    }

    #[test]
    fn platform_presets_resolve_by_name() {
        for p in PlatformPreset::ALL {
            assert_eq!(PlatformPreset::from_name(p.name()), Some(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(PlatformPreset::from_name("nope"), None);
        // The preset decision spaces have the documented sizes.
        assert_eq!(
            PlatformPreset::OdroidXu3.spec().decision_space().len(),
            4940
        );
        assert_eq!(PlatformPreset::HexaAsym.spec().decision_space().len(), 3600);
        assert_eq!(PlatformPreset::Wearable.spec().decision_space().len(), 216);
    }

    #[test]
    fn workload_spec_errors_are_descriptive() {
        let mut spec = WorkloadSpec::benchmark(Benchmark::Qsort);
        spec.benchmarks[0] = "not-a-benchmark".into();
        let err = spec.build().unwrap_err();
        assert!(err.to_string().contains("not-a-benchmark"), "{err}");

        let empty = WorkloadSpec {
            benchmarks: Vec::new(),
            ..WorkloadSpec::benchmark(Benchmark::Qsort)
        };
        assert!(empty.build().is_err());

        let mut pair = WorkloadSpec::interleave(&[Benchmark::Fft, Benchmark::Aes], 1);
        pair.benchmarks.pop();
        let err = pair.build().unwrap_err();
        assert!(err.to_string().contains("two benchmarks"), "{err}");

        // Degenerate generator parameters from a loaded file fail loudly rather than
        // silently producing an all-burst / aperiodic workload.
        let mut zero_period = WorkloadSpec::bursty(Benchmark::Qsort, 6.0, 0, 24, 1);
        let err = zero_period.build().unwrap_err();
        assert!(err.to_string().contains("period"), "{err}");
        zero_period.kind = WorkloadKind::Periodic;
        assert!(zero_period.build().is_err());
        let mut nan_intensity = WorkloadSpec::io_idle(Benchmark::Sha, f64::NAN, 24, 1);
        let err = nan_intensity.build().unwrap_err();
        assert!(err.to_string().contains("finite"), "{err}");
        nan_intensity.intensity = 0.5;
        assert!(nan_intensity.build().is_ok());
    }
}
