//! Power and energy model.
//!
//! Replaces the Odroid-XU3's INA231 current sensors: per-cluster dynamic power follows the
//! classic `C_eff · V² · f` law weighted by utilization, static power scales with the supply
//! voltage squared per powered-on core, and a small memory + SoC-base component accounts for
//! DRAM and uncore consumption. The paper only consumes the *total* power/energy observable,
//! but the per-rail breakdown is kept because the counter features include total chip power
//! and the governors look at per-cluster utilization.

use crate::cluster::ClusterParams;
use crate::config::DrmDecision;
use crate::perf::EpochPerf;
use crate::workload::PhaseSpec;
use serde::{Deserialize, Serialize};

/// Tunable constants of the power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Idle power of the memory subsystem in watts.
    pub mem_base_power_w: f64,
    /// Energy per DRAM access in nanojoules.
    pub mem_energy_per_access_nj: f64,
    /// Always-on SoC power (interconnect, GPU idle, IO) in watts.
    pub soc_base_power_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            mem_base_power_w: 0.12,
            mem_energy_per_access_nj: 6.0,
            soc_base_power_w: 0.18,
        }
    }
}

// The thermal model grew its own module; the re-export keeps the long-standing
// `soc_sim::power::ThermalModel` import path working.
pub use crate::thermal::ThermalModel;

/// Average power over one epoch, broken down per rail (as the Odroid sensors report it).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Big-cluster (A15) rail power in watts.
    pub big_w: f64,
    /// Little-cluster (A7) rail power in watts.
    pub little_w: f64,
    /// Memory rail power in watts.
    pub mem_w: f64,
    /// Always-on SoC base power in watts.
    pub base_w: f64,
}

impl PowerBreakdown {
    /// Total chip power in watts.
    pub fn total_w(&self) -> f64 {
        self.big_w + self.little_w + self.mem_w + self.base_w
    }
}

impl PowerModel {
    /// Average power of one cluster over an epoch.
    ///
    /// `active_cores` are powered (and leak); `utilization` is the average busy fraction of
    /// those cores, which scales the dynamic component.
    pub fn cluster_power(
        &self,
        cluster: &ClusterParams,
        frequency_mhz: u32,
        active_cores: u8,
        utilization: f64,
    ) -> f64 {
        if active_cores == 0 {
            return 0.0; // power-gated cluster
        }
        let opp = cluster
            .opp_for(frequency_mhz)
            .unwrap_or_else(|| cluster.opp_at_level(cluster.frequency_levels()));
        let v2 = opp.voltage_v * opp.voltage_v;
        let f_hz = opp.frequency_mhz as f64 * 1e6;
        let n = active_cores as f64;
        let dynamic = cluster.capacitance_nf * 1e-9 * v2 * f_hz * n * utilization.clamp(0.0, 1.0);
        let static_p = cluster.leakage_w_per_v2 * v2 * n;
        dynamic + static_p
    }

    /// Average power of the memory subsystem over an epoch.
    pub fn memory_power(&self, phase: &PhaseSpec, instructions_per_second: f64) -> f64 {
        let accesses_per_second = instructions_per_second * phase.memory_refs_per_instr;
        self.mem_base_power_w + accesses_per_second * self.mem_energy_per_access_nj * 1e-9
    }

    /// Full per-rail power breakdown for one epoch.
    pub fn epoch_power(
        &self,
        big: &ClusterParams,
        little: &ClusterParams,
        decision: &DrmDecision,
        phase: &PhaseSpec,
        perf: &EpochPerf,
    ) -> PowerBreakdown {
        let big_w = self.cluster_power(
            big,
            decision.big_freq_mhz,
            decision.big_cores,
            perf.big_utilization,
        );
        let little_w = self.cluster_power(
            little,
            decision.little_freq_mhz,
            decision.little_cores,
            perf.little_utilization,
        );
        let ips = if perf.time_s > 0.0 {
            phase.instructions / perf.time_s
        } else {
            0.0
        };
        let mem_w = self.memory_power(phase, ips);
        PowerBreakdown {
            big_w,
            little_w,
            mem_w,
            base_w: self.soc_base_power_w,
        }
    }

    /// Energy consumed over one epoch in joules.
    pub fn epoch_energy(
        &self,
        big: &ClusterParams,
        little: &ClusterParams,
        decision: &DrmDecision,
        phase: &PhaseSpec,
        perf: &EpochPerf,
    ) -> f64 {
        self.epoch_power(big, little, decision, phase, perf)
            .total_w()
            * perf.time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterParams;
    use crate::perf::PerfModel;

    fn phase() -> PhaseSpec {
        PhaseSpec {
            name: "mixed".into(),
            instructions: 80e6,
            parallel_fraction: 0.5,
            memory_refs_per_instr: 0.25,
            l2_miss_rate: 0.03,
            branch_fraction: 0.1,
            branch_miss_rate: 0.04,
            ilp_scale: 0.85,
        }
    }

    fn decision(big: u8, little: u8, bf: u32, lf: u32) -> DrmDecision {
        DrmDecision {
            big_cores: big,
            little_cores: little,
            big_freq_mhz: bf,
            little_freq_mhz: lf,
        }
    }

    #[test]
    fn cluster_power_increases_with_frequency_cores_and_utilization() {
        let model = PowerModel::default();
        let big = ClusterParams::exynos5422_big();
        let p_low = model.cluster_power(&big, 600, 2, 0.8);
        let p_high_f = model.cluster_power(&big, 1800, 2, 0.8);
        let p_more_cores = model.cluster_power(&big, 600, 4, 0.8);
        let p_idle = model.cluster_power(&big, 600, 2, 0.0);
        assert!(p_high_f > p_low);
        assert!(p_more_cores > p_low);
        assert!(p_idle < p_low);
        assert!(p_idle > 0.0, "powered cores still leak");
        assert_eq!(model.cluster_power(&big, 600, 0, 1.0), 0.0);
    }

    #[test]
    fn frequency_scaling_is_superlinear_in_power() {
        // Doubling frequency raises voltage too, so power more than doubles at full load.
        let model = PowerModel::default();
        let big = ClusterParams::exynos5422_big();
        let p1 = model.cluster_power(&big, 1000, 4, 1.0);
        let p2 = model.cluster_power(&big, 2000, 4, 1.0);
        assert!(
            p2 > 2.0 * p1,
            "p(2GHz) = {p2} should exceed 2 x p(1GHz) = {}",
            2.0 * p1
        );
    }

    #[test]
    fn big_cluster_power_magnitudes_are_realistic() {
        // Published Odroid-XU3 measurements: A15 cluster ~5-7 W flat out, A7 cluster ~0.5-1 W.
        let model = PowerModel::default();
        let big = ClusterParams::exynos5422_big();
        let little = ClusterParams::exynos5422_little();
        let big_max = model.cluster_power(&big, 2000, 4, 1.0);
        let little_max = model.cluster_power(&little, 1400, 4, 1.0);
        assert!(big_max > 3.5 && big_max < 9.0, "big cluster {big_max} W");
        assert!(
            little_max > 0.4 && little_max < 1.6,
            "little cluster {little_max} W"
        );
    }

    #[test]
    fn epoch_power_and_energy_are_consistent() {
        let model = PowerModel::default();
        let perf_model = PerfModel::default();
        let big = ClusterParams::exynos5422_big();
        let little = ClusterParams::exynos5422_little();
        let d = decision(2, 2, 1400, 1000);
        let ph = phase();
        let perf = perf_model.run_epoch(&big, &little, &d, &ph);
        let breakdown = model.epoch_power(&big, &little, &d, &ph, &perf);
        let energy = model.epoch_energy(&big, &little, &d, &ph, &perf);
        assert!((energy - breakdown.total_w() * perf.time_s).abs() < 1e-12);
        assert!(breakdown.total_w() > breakdown.big_w);
        assert!(breakdown.mem_w > 0.0);
        assert!(breakdown.base_w > 0.0);
    }

    #[test]
    fn powersave_configuration_uses_least_power_but_most_time() {
        let model = PowerModel::default();
        let perf_model = PerfModel::default();
        let big = ClusterParams::exynos5422_big();
        let little = ClusterParams::exynos5422_little();
        let ph = phase();

        let fast = decision(4, 4, 2000, 1400);
        let slow = decision(0, 1, 200, 200);
        let perf_fast = perf_model.run_epoch(&big, &little, &fast, &ph);
        let perf_slow = perf_model.run_epoch(&big, &little, &slow, &ph);
        let p_fast = model
            .epoch_power(&big, &little, &fast, &ph, &perf_fast)
            .total_w();
        let p_slow = model
            .epoch_power(&big, &little, &slow, &ph, &perf_slow)
            .total_w();
        assert!(p_fast > 4.0 * p_slow);
        assert!(perf_slow.time_s > 4.0 * perf_fast.time_s);
    }

    #[test]
    fn energy_exhibits_a_tradeoff_not_a_single_optimum_at_extremes() {
        // The energy-optimal configuration should not be the performance extreme; usually an
        // intermediate (race-to-idle vs leakage) point or the little cluster wins.
        let model = PowerModel::default();
        let perf_model = PerfModel::default();
        let big = ClusterParams::exynos5422_big();
        let little = ClusterParams::exynos5422_little();
        let ph = phase();
        let energy_of = |d: &DrmDecision| {
            let perf = perf_model.run_epoch(&big, &little, d, &ph);
            model.epoch_energy(&big, &little, d, &ph, &perf)
        };
        let e_perf = energy_of(&decision(4, 4, 2000, 1400));
        let e_little = energy_of(&decision(0, 4, 200, 1000));
        assert!(
            e_little < e_perf,
            "little-cluster configuration should be more energy efficient ({e_little} vs {e_perf})"
        );
    }

    #[test]
    fn memory_power_scales_with_access_rate() {
        let model = PowerModel::default();
        let ph = phase();
        let low = model.memory_power(&ph, 1e8);
        let high = model.memory_power(&ph, 1e9);
        assert!(high > low);
        assert!(low >= model.mem_base_power_w);
    }
}
