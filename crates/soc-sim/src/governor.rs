//! Re-implementations of the stock Linux cpufreq governors used as baselines in the paper
//! (§V-B "Default governors"): ondemand, interactive, performance and powersave, plus a
//! userspace governor that pins an arbitrary fixed configuration.
//!
//! The governors only manage frequency; like the kernel defaults they keep every core online.
//! Each follows the decision rule the paper describes: step or jump the frequency when the
//! observed cluster utilization crosses a static threshold.

use crate::cluster::ClusterParams;
use crate::config::DrmDecision;
use crate::counters::CounterSnapshot;
use crate::platform::{DrmController, SocSpec};

/// `performance` governor: all cores at the maximum frequency, always.
#[derive(Debug, Clone)]
pub struct PerformanceGovernor {
    spec: SocSpec,
}

impl PerformanceGovernor {
    /// Creates the governor for a platform.
    pub fn new(spec: SocSpec) -> Self {
        PerformanceGovernor { spec }
    }
}

impl DrmController for PerformanceGovernor {
    fn decide(&mut self, _: &CounterSnapshot, _: &DrmDecision) -> DrmDecision {
        self.spec.decision_space().performance_decision()
    }

    fn name(&self) -> &str {
        "performance"
    }
}

/// `powersave` governor: all cores at the minimum frequency, always.
#[derive(Debug, Clone)]
pub struct PowersaveGovernor {
    spec: SocSpec,
}

impl PowersaveGovernor {
    /// Creates the governor for a platform.
    pub fn new(spec: SocSpec) -> Self {
        PowersaveGovernor { spec }
    }
}

impl DrmController for PowersaveGovernor {
    fn decide(&mut self, _: &CounterSnapshot, _: &DrmDecision) -> DrmDecision {
        let space = self.spec.decision_space();
        DrmDecision {
            big_cores: space.big_cluster().core_count,
            little_cores: space.little_cluster().core_count,
            big_freq_mhz: space.big_cluster().min_frequency_mhz(),
            little_freq_mhz: space.little_cluster().min_frequency_mhz(),
        }
    }

    fn name(&self) -> &str {
        "powersave"
    }
}

/// `userspace` governor: a fixed configuration chosen by the caller.
#[derive(Debug, Clone)]
pub struct UserspaceGovernor {
    decision: DrmDecision,
}

impl UserspaceGovernor {
    /// Pins the platform to `decision` for the whole run.
    pub fn new(decision: DrmDecision) -> Self {
        UserspaceGovernor { decision }
    }

    /// The pinned decision.
    pub fn decision(&self) -> DrmDecision {
        self.decision
    }
}

impl DrmController for UserspaceGovernor {
    fn decide(&mut self, _: &CounterSnapshot, _: &DrmDecision) -> DrmDecision {
        self.decision
    }

    fn name(&self) -> &str {
        "userspace"
    }
}

/// `ondemand` governor: jumps to the maximum frequency when utilization exceeds the up
/// threshold and walks back down in steps when it falls below the down threshold.
#[derive(Debug, Clone)]
pub struct OndemandGovernor {
    spec: SocSpec,
    up_threshold: f64,
    down_threshold: f64,
    down_step_levels: usize,
}

impl OndemandGovernor {
    /// Creates the governor with the kernel-default 80 % up threshold.
    pub fn new(spec: SocSpec) -> Self {
        OndemandGovernor {
            spec,
            up_threshold: 0.80,
            down_threshold: 0.30,
            down_step_levels: 2,
        }
    }

    /// Overrides the utilization thresholds (useful for ablations).
    pub fn with_thresholds(mut self, up: f64, down: f64) -> Self {
        self.up_threshold = up.clamp(0.0, 1.0);
        self.down_threshold = down.clamp(0.0, up);
        self
    }

    fn next_frequency(&self, cluster: &ClusterParams, current_mhz: u32, utilization: f64) -> u32 {
        let level = cluster.level_of(current_mhz).unwrap_or(0);
        if utilization > self.up_threshold {
            cluster.max_frequency_mhz()
        } else if utilization < self.down_threshold {
            cluster
                .opp_at_level(level.saturating_sub(self.down_step_levels))
                .frequency_mhz
        } else {
            current_mhz
        }
    }
}

impl DrmController for OndemandGovernor {
    fn decide(&mut self, counters: &CounterSnapshot, previous: &DrmDecision) -> DrmDecision {
        let space = self.spec.decision_space();
        let big = space.big_cluster();
        let little = space.little_cluster();
        let (big_load, little_load) = cluster_loads(counters, previous);
        DrmDecision {
            big_cores: big.core_count,
            little_cores: little.core_count,
            big_freq_mhz: self.next_frequency(big, previous.big_freq_mhz, big_load),
            little_freq_mhz: self.next_frequency(little, previous.little_freq_mhz, little_load),
        }
    }

    fn name(&self) -> &str {
        "ondemand"
    }
}

/// Estimates the load of the busiest core of each cluster, the quantity the kernel governors
/// key their decisions on. The counters only expose average utilizations, so the busiest-core
/// load is approximated by the cluster's total busy fraction capped at one: if any core is
/// saturated (e.g. by the serial section) the estimate reaches 1.0.
fn cluster_loads(counters: &CounterSnapshot, previous: &DrmDecision) -> (f64, f64) {
    let big_load = (counters.big_cluster_utilization_per_core * previous.big_cores as f64).min(1.0);
    let little_load = counters.little_cluster_utilization_sum.min(1.0);
    (big_load, little_load)
}

/// `interactive` governor: ramps one level at a time above the hispeed threshold and decays
/// one level when utilization drops below the low threshold.
#[derive(Debug, Clone)]
pub struct InteractiveGovernor {
    spec: SocSpec,
    hispeed_threshold: f64,
    low_threshold: f64,
}

impl InteractiveGovernor {
    /// Creates the governor with typical Android tuning (85 % / 40 % thresholds).
    pub fn new(spec: SocSpec) -> Self {
        InteractiveGovernor {
            spec,
            hispeed_threshold: 0.85,
            low_threshold: 0.40,
        }
    }

    fn next_frequency(&self, cluster: &ClusterParams, current_mhz: u32, utilization: f64) -> u32 {
        let level = cluster.level_of(current_mhz).unwrap_or(0);
        if utilization > self.hispeed_threshold {
            cluster.opp_at_level(level + 1).frequency_mhz
        } else if utilization < self.low_threshold {
            cluster.opp_at_level(level.saturating_sub(1)).frequency_mhz
        } else {
            current_mhz
        }
    }
}

impl DrmController for InteractiveGovernor {
    fn decide(&mut self, counters: &CounterSnapshot, previous: &DrmDecision) -> DrmDecision {
        let space = self.spec.decision_space();
        let big = space.big_cluster();
        let little = space.little_cluster();
        let (big_load, little_load) = cluster_loads(counters, previous);
        DrmDecision {
            big_cores: big.core_count,
            little_cores: little.core_count,
            big_freq_mhz: self.next_frequency(big, previous.big_freq_mhz, big_load),
            little_freq_mhz: self.next_frequency(little, previous.little_freq_mhz, little_load),
        }
    }

    fn name(&self) -> &str {
        "interactive"
    }
}

/// All four stock governors boxed and ready for comparison loops.
pub fn default_governors(spec: &SocSpec) -> Vec<Box<dyn DrmController>> {
    vec![
        Box::new(OndemandGovernor::new(spec.clone())),
        Box::new(InteractiveGovernor::new(spec.clone())),
        Box::new(PerformanceGovernor::new(spec.clone())),
        Box::new(PowersaveGovernor::new(spec.clone())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::Benchmark;
    use crate::platform::Platform;

    fn busy_counters(big_util: f64, little_util_sum: f64) -> CounterSnapshot {
        CounterSnapshot {
            big_cluster_utilization_per_core: big_util,
            little_cluster_utilization_sum: little_util_sum,
            ..CounterSnapshot::zeroed()
        }
    }

    fn previous() -> DrmDecision {
        DrmDecision {
            big_cores: 4,
            little_cores: 4,
            big_freq_mhz: 1000,
            little_freq_mhz: 800,
        }
    }

    #[test]
    fn performance_and_powersave_pin_the_extremes() {
        let spec = SocSpec::exynos5422();
        let mut perf = PerformanceGovernor::new(spec.clone());
        let mut save = PowersaveGovernor::new(spec);
        let p = perf.decide(&CounterSnapshot::zeroed(), &previous());
        let s = save.decide(&CounterSnapshot::zeroed(), &previous());
        assert_eq!(p.big_freq_mhz, 2000);
        assert_eq!(p.little_freq_mhz, 1400);
        assert_eq!(s.big_freq_mhz, 200);
        assert_eq!(s.little_freq_mhz, 200);
        assert_eq!(p.active_cores(), 8);
        assert_eq!(s.active_cores(), 8);
        assert_eq!(perf.name(), "performance");
        assert_eq!(save.name(), "powersave");
    }

    #[test]
    fn userspace_governor_pins_the_given_decision() {
        let d = DrmDecision {
            big_cores: 1,
            little_cores: 2,
            big_freq_mhz: 700,
            little_freq_mhz: 500,
        };
        let mut g = UserspaceGovernor::new(d);
        assert_eq!(g.decide(&busy_counters(1.0, 4.0), &previous()), d);
        assert_eq!(g.decision(), d);
        assert_eq!(g.name(), "userspace");
    }

    #[test]
    fn ondemand_jumps_to_max_on_high_load_and_steps_down_on_idle() {
        let spec = SocSpec::exynos5422();
        let mut g = OndemandGovernor::new(spec);
        let hot = g.decide(&busy_counters(0.95, 3.8), &previous());
        assert_eq!(hot.big_freq_mhz, 2000);
        assert_eq!(hot.little_freq_mhz, 1400);

        let idle = g.decide(&busy_counters(0.05, 0.2), &previous());
        assert_eq!(idle.big_freq_mhz, 800); // two 100 MHz levels below 1000
        assert_eq!(idle.little_freq_mhz, 600);

        let steady = g.decide(&busy_counters(0.15, 0.5), &previous());
        assert_eq!(steady.big_freq_mhz, 1000);
        assert_eq!(steady.little_freq_mhz, 800);
        assert_eq!(g.name(), "ondemand");
    }

    #[test]
    fn ondemand_custom_thresholds_are_respected() {
        let spec = SocSpec::exynos5422();
        let mut g = OndemandGovernor::new(spec).with_thresholds(0.5, 0.2);
        let warm = g.decide(&busy_counters(0.6, 2.4), &previous());
        assert_eq!(warm.big_freq_mhz, 2000);
    }

    #[test]
    fn interactive_ramps_one_level_at_a_time() {
        let spec = SocSpec::exynos5422();
        let mut g = InteractiveGovernor::new(spec);
        let hot = g.decide(&busy_counters(0.95, 3.9), &previous());
        assert_eq!(hot.big_freq_mhz, 1100);
        assert_eq!(hot.little_freq_mhz, 900);
        let idle = g.decide(&busy_counters(0.05, 0.3), &previous());
        assert_eq!(idle.big_freq_mhz, 900);
        assert_eq!(idle.little_freq_mhz, 700);
        assert_eq!(g.name(), "interactive");
    }

    #[test]
    fn interactive_saturates_at_the_frequency_extremes() {
        let spec = SocSpec::exynos5422();
        let mut g = InteractiveGovernor::new(spec);
        let at_max = DrmDecision {
            big_freq_mhz: 2000,
            little_freq_mhz: 1400,
            ..previous()
        };
        let hot = g.decide(&busy_counters(1.0, 4.0), &at_max);
        assert_eq!(hot.big_freq_mhz, 2000);
        assert_eq!(hot.little_freq_mhz, 1400);
        let at_min = DrmDecision {
            big_freq_mhz: 200,
            little_freq_mhz: 200,
            ..previous()
        };
        let idle = g.decide(&busy_counters(0.0, 0.0), &at_min);
        assert_eq!(idle.big_freq_mhz, 200);
        assert_eq!(idle.little_freq_mhz, 200);
    }

    #[test]
    fn governors_produce_expected_ordering_on_a_real_workload() {
        let platform = Platform::odroid_xu3();
        let app = Benchmark::Qsort.application();
        let spec = platform.spec().clone();

        let mut perf = PerformanceGovernor::new(spec.clone());
        let mut save = PowersaveGovernor::new(spec.clone());
        let mut ond = OndemandGovernor::new(spec.clone());
        let mut inter = InteractiveGovernor::new(spec);

        let r_perf = platform.run_application(&app, &mut perf, 0).unwrap();
        let r_save = platform.run_application(&app, &mut save, 0).unwrap();
        let r_ond = platform.run_application(&app, &mut ond, 0).unwrap();
        let r_inter = platform.run_application(&app, &mut inter, 0).unwrap();

        // performance is fastest, powersave slowest; the adaptive governors sit in between.
        assert!(r_perf.execution_time_s < r_ond.execution_time_s);
        assert!(r_perf.execution_time_s < r_inter.execution_time_s);
        assert!(r_ond.execution_time_s < r_save.execution_time_s);
        assert!(r_inter.execution_time_s < r_save.execution_time_s);
        // powersave draws the least average power.
        assert!(r_save.average_power_w < r_ond.average_power_w);
        assert!(r_save.average_power_w < r_perf.average_power_w);
    }

    #[test]
    fn default_governors_returns_all_four() {
        let spec = SocSpec::exynos5422();
        let governors = default_governors(&spec);
        let names: Vec<&str> = governors.iter().map(|g| g.name()).collect();
        assert_eq!(
            names,
            vec!["ondemand", "interactive", "performance", "powersave"]
        );
    }
}
