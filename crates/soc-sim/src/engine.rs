//! Decision-indexed lookup tables for the streaming simulation engine.
//!
//! A platform's decision space is a small finite grid (core counts × OPP indices — 4 940
//! configurations on the Exynos 5422), yet the seed epoch loop re-derived per-decision
//! cluster state from the models on **every** epoch: a linear OPP-table scan inside
//! `DecisionSpace::validate`, two more scans inside the power model's `opp_for` lookups, and
//! a `nearest_frequency` scan whenever thermal throttling capped the requested decision.
//! [`DecisionTable`] hoists all of that out of the hot path by precomputing, for every
//! decision in the space:
//!
//! * the canonical [`DrmDecision`] (so equality with the requested decision is implicit),
//! * the per-cluster OPP voltage,
//! * the utilization-invariant power terms of [`crate::power::PowerModel::cluster_power`]
//!   (`static_w = k·V²·n`) and the dynamic coefficient (`C·V²·f·n`, to be multiplied by the
//!   epoch's utilization), evaluated with **exactly** the seed's operation ordering so table
//!   lookups are bit-identical to freshly-derived model values, and
//! * the index of the decision the thermal throttle clamps this one to
//!   ([`crate::thermal::ThermalModel::cap_decision`] with the throttle engaged).
//!
//! Lookup is O(log levels): two bounds checks on the core counts plus a binary search per
//! cluster frequency (OPP tables are ascending). The table is immutable after construction
//! and shared behind an `Arc` by [`crate::platform::Platform`], so platform clones cost a
//! refcount bump rather than a rebuild.

use crate::cluster::ClusterParams;
use crate::config::{DecisionSpace, DrmDecision, KnobCardinalities};
use crate::thermal::ThermalModel;

/// Precomputed per-decision state: everything the epoch loop needs that depends only on the
/// decision (not on the workload phase).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionEntry {
    /// The canonical decision this entry describes.
    pub decision: DrmDecision,
    /// Big-cluster supply voltage at this OPP, in volts.
    pub big_voltage_v: f64,
    /// Little-cluster supply voltage at this OPP, in volts.
    pub little_voltage_v: f64,
    /// Dynamic-power coefficient of the Big cluster in watts per unit utilization
    /// (`C·10⁻⁹·V²·f·n`); zero when the cluster is power-gated.
    pub big_dynamic_coeff_w: f64,
    /// Dynamic-power coefficient of the Little cluster in watts per unit utilization.
    pub little_dynamic_coeff_w: f64,
    /// Static (leakage) power of the powered Big cores in watts (`k·V²·n`).
    pub big_static_w: f64,
    /// Static (leakage) power of the powered Little cores in watts.
    pub little_static_w: f64,
    /// Index of the entry this decision is clamped to while thermal throttling is engaged
    /// (the entry's own index when the decision already respects the throttle ceilings).
    pub throttled_index: usize,
}

impl DecisionEntry {
    /// Average Big-cluster rail power at the given utilization, in watts.
    ///
    /// Bit-identical to [`crate::power::PowerModel::cluster_power`] for every decision in
    /// the space: the coefficient/static split preserves the seed's multiplication order.
    #[inline]
    pub fn big_power_w(&self, utilization: f64) -> f64 {
        self.big_dynamic_coeff_w * utilization.clamp(0.0, 1.0) + self.big_static_w
    }

    /// Average Little-cluster rail power at the given utilization, in watts.
    #[inline]
    pub fn little_power_w(&self, utilization: f64) -> f64 {
        self.little_dynamic_coeff_w * utilization.clamp(0.0, 1.0) + self.little_static_w
    }
}

/// Dense per-decision lookup table for one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTable {
    cards: KnobCardinalities,
    min_little_cores: u8,
    /// Ascending Big-cluster OPP frequencies (binary-search index == OPP level).
    big_freqs: Vec<u32>,
    /// Ascending Little-cluster OPP frequencies.
    little_freqs: Vec<u32>,
    entries: Vec<DecisionEntry>,
}

impl DecisionTable {
    /// Precomputes the table for a decision space under a thermal model (the thermal model
    /// determines each entry's throttled target).
    pub fn new(space: &DecisionSpace, thermal: &ThermalModel) -> Self {
        let cards = space.knob_cardinalities();
        let big = space.big_cluster();
        let little = space.little_cluster();
        let big_freqs: Vec<u32> = big.opps.iter().map(|o| o.frequency_mhz).collect();
        let little_freqs: Vec<u32> = little.opps.iter().map(|o| o.frequency_mhz).collect();

        let mut table = DecisionTable {
            cards,
            min_little_cores: space.min_little_cores(),
            big_freqs,
            little_freqs,
            entries: Vec::with_capacity(cards.total_decisions()),
        };
        for b in 0..cards.big_core_options {
            for l in 0..cards.little_core_options {
                for bf in 0..cards.big_freq_options {
                    for lf in 0..cards.little_freq_options {
                        let decision = space.decision_from_knob_indices([b, l, bf, lf]);
                        table
                            .entries
                            .push(build_entry(big, little, &decision, bf, lf));
                    }
                }
            }
        }
        // Second pass: resolve each entry's throttled target now that every index exists.
        // `cap_decision` only moves frequencies onto supported OPPs, so the capped decision
        // is always somewhere in the table.
        for i in 0..table.entries.len() {
            let capped = thermal.cap_decision(true, &table.entries[i].decision, big, little);
            let target = table
                .index_of(&capped)
                .expect("throttle caps stay inside the decision space");
            table.entries[i].throttled_index = target;
        }
        table
    }

    /// Number of entries (the size of the decision space).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the table is empty (never the case for valid clusters).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The dense index of a decision, or `None` if it lies outside the space.
    ///
    /// `index_of(d).is_some()` is exactly equivalent to
    /// [`DecisionSpace::validate`]`(d).is_ok()` for the space the table was built from.
    #[inline]
    pub fn index_of(&self, decision: &DrmDecision) -> Option<usize> {
        let b = decision.big_cores as usize;
        if b >= self.cards.big_core_options {
            return None;
        }
        let l = decision.little_cores.checked_sub(self.min_little_cores)? as usize;
        if l >= self.cards.little_core_options {
            return None;
        }
        let bf = self.big_freqs.binary_search(&decision.big_freq_mhz).ok()?;
        let lf = self
            .little_freqs
            .binary_search(&decision.little_freq_mhz)
            .ok()?;
        Some(
            ((b * self.cards.little_core_options + l) * self.cards.big_freq_options + bf)
                * self.cards.little_freq_options
                + lf,
        )
    }

    /// The entry for a decision, or `None` if the decision lies outside the space.
    #[inline]
    pub fn lookup(&self, decision: &DrmDecision) -> Option<&DecisionEntry> {
        self.index_of(decision).map(|i| &self.entries[i])
    }

    /// The entry at a dense index (as stored in [`DecisionEntry::throttled_index`]).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn entry(&self, index: usize) -> &DecisionEntry {
        &self.entries[index]
    }

    /// Iterates over every entry in dense-index order.
    pub fn iter(&self) -> impl Iterator<Item = &DecisionEntry> {
        self.entries.iter()
    }

    /// Approximate heap footprint of the table in bytes (entries + frequency indices).
    pub fn footprint_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<DecisionEntry>()
            + (self.big_freqs.len() + self.little_freqs.len()) * std::mem::size_of::<u32>()
    }
}

/// Computes one entry's model constants with the seed's exact operation ordering
/// (`throttled_index` is filled in by the second construction pass).
fn build_entry(
    big: &ClusterParams,
    little: &ClusterParams,
    decision: &DrmDecision,
    big_level: usize,
    little_level: usize,
) -> DecisionEntry {
    let big_opp = big.opps[big_level];
    let little_opp = little.opps[little_level];
    let (big_dynamic_coeff_w, big_static_w) = if decision.big_cores == 0 {
        (0.0, 0.0)
    } else {
        let v2 = big_opp.voltage_v * big_opp.voltage_v;
        let f_hz = big_opp.frequency_mhz as f64 * 1e6;
        let n = decision.big_cores as f64;
        (
            big.capacitance_nf * 1e-9 * v2 * f_hz * n,
            big.leakage_w_per_v2 * v2 * n,
        )
    };
    let (little_dynamic_coeff_w, little_static_w) = if decision.little_cores == 0 {
        (0.0, 0.0)
    } else {
        let v2 = little_opp.voltage_v * little_opp.voltage_v;
        let f_hz = little_opp.frequency_mhz as f64 * 1e6;
        let n = decision.little_cores as f64;
        (
            little.capacitance_nf * 1e-9 * v2 * f_hz * n,
            little.leakage_w_per_v2 * v2 * n,
        )
    };
    DecisionEntry {
        decision: *decision,
        big_voltage_v: big_opp.voltage_v,
        little_voltage_v: little_opp.voltage_v,
        big_dynamic_coeff_w,
        little_dynamic_coeff_w,
        big_static_w,
        little_static_w,
        throttled_index: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerModel;

    fn exynos_table() -> (DecisionSpace, ThermalModel, DecisionTable) {
        let space = DecisionSpace::exynos5422();
        let thermal = ThermalModel::default();
        let table = DecisionTable::new(&space, &thermal);
        (space, thermal, table)
    }

    #[test]
    fn table_covers_exactly_the_decision_space() {
        let (space, _, table) = exynos_table();
        assert_eq!(table.len(), space.len());
        assert!(!table.is_empty());
        for (i, d) in space.iter().enumerate() {
            assert_eq!(table.index_of(&d), Some(i), "dense index mismatch for {d}");
            assert_eq!(table.entry(i).decision, d);
            assert_eq!(table.lookup(&d).unwrap().decision, d);
        }
        assert_eq!(table.iter().count(), space.len());
        assert!(table.footprint_bytes() > space.len() * std::mem::size_of::<f64>());
    }

    #[test]
    fn lookup_rejects_exactly_what_validate_rejects() {
        let (space, _, table) = exynos_table();
        let bad = [
            DrmDecision {
                big_cores: 5,
                little_cores: 1,
                big_freq_mhz: 1000,
                little_freq_mhz: 1000,
            },
            DrmDecision {
                big_cores: 2,
                little_cores: 0,
                big_freq_mhz: 1000,
                little_freq_mhz: 1000,
            },
            DrmDecision {
                big_cores: 2,
                little_cores: 5,
                big_freq_mhz: 1000,
                little_freq_mhz: 1000,
            },
            DrmDecision {
                big_cores: 2,
                little_cores: 2,
                big_freq_mhz: 1050,
                little_freq_mhz: 1000,
            },
            DrmDecision {
                big_cores: 2,
                little_cores: 2,
                big_freq_mhz: 1000,
                little_freq_mhz: 1500,
            },
        ];
        for d in bad {
            assert!(space.validate(&d).is_err());
            assert!(table.lookup(&d).is_none(), "table accepted invalid {d}");
        }
    }

    #[test]
    fn entry_powers_are_bit_identical_to_the_power_model() {
        let (space, _, table) = exynos_table();
        let model = PowerModel::default();
        let big = space.big_cluster();
        let little = space.little_cluster();
        for entry in table.iter() {
            let d = &entry.decision;
            for u in [0.0, 0.37, 0.999, 1.0] {
                assert_eq!(
                    entry.big_power_w(u),
                    model.cluster_power(big, d.big_freq_mhz, d.big_cores, u),
                    "big rail mismatch at {d}, u = {u}"
                );
                assert_eq!(
                    entry.little_power_w(u),
                    model.cluster_power(little, d.little_freq_mhz, d.little_cores, u),
                    "little rail mismatch at {d}, u = {u}"
                );
            }
        }
    }

    #[test]
    fn throttled_indices_reproduce_cap_decision() {
        for (space, thermal) in [
            (DecisionSpace::exynos5422(), ThermalModel::default()),
            (
                DecisionSpace::wearable(),
                *crate::platform::SocSpec::wearable().thermal_model(),
            ),
        ] {
            let table = DecisionTable::new(&space, &thermal);
            for entry in table.iter() {
                let capped = thermal.cap_decision(
                    true,
                    &entry.decision,
                    space.big_cluster(),
                    space.little_cluster(),
                );
                assert_eq!(
                    table.entry(entry.throttled_index).decision,
                    capped,
                    "throttle target mismatch for {}",
                    entry.decision
                );
            }
        }
    }

    #[test]
    fn voltages_match_the_opp_tables() {
        let (space, _, table) = exynos_table();
        for entry in table.iter() {
            let d = &entry.decision;
            assert_eq!(
                entry.big_voltage_v,
                space
                    .big_cluster()
                    .opp_for(d.big_freq_mhz)
                    .unwrap()
                    .voltage_v
            );
            assert_eq!(
                entry.little_voltage_v,
                space
                    .little_cluster()
                    .opp_for(d.little_freq_mhz)
                    .unwrap()
                    .voltage_v
            );
        }
    }
}
