//! Error type for the SoC simulator.

use std::error::Error;
use std::fmt;

/// Error returned by simulator operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SocError {
    /// A DRM decision referenced a configuration outside the platform's decision space
    /// (e.g. a frequency that is not an OPP, or more active cores than exist).
    InvalidDecision {
        /// Human-readable description of what was wrong.
        reason: String,
    },
    /// An application contained no decision epochs.
    EmptyApplication {
        /// Name of the offending application.
        name: String,
    },
    /// A workload or platform parameter was outside its physical range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A scenario definition could not be resolved or parsed.
    Scenario {
        /// Human-readable description of what was wrong.
        reason: String,
    },
    /// A recorded run trace could not be parsed, or a replay found no matching recording.
    Trace {
        /// Human-readable description of what was wrong.
        reason: String,
    },
    /// A fault was injected into (or contained at) the evaluation seam: a scheduled
    /// failure from a fault-injection backend, or a worker panic caught and converted
    /// into a structured error.
    Fault {
        /// Human-readable description of the fault.
        reason: String,
    },
    /// A streaming run was cooperatively cancelled by its epoch sink
    /// ([`EpochSink::poll_cancel`](crate::platform::EpochSink::poll_cancel)); the run's
    /// partial aggregates are discarded, never reported.
    Cancelled {
        /// Why the cancellation was raised (the cancellation layer's stable reason name).
        reason: String,
    },
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::InvalidDecision { reason } => write!(f, "invalid DRM decision: {reason}"),
            SocError::EmptyApplication { name } => {
                write!(f, "application '{name}' has no decision epochs")
            }
            SocError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            SocError::Scenario { reason } => write!(f, "invalid scenario: {reason}"),
            SocError::Trace { reason } => write!(f, "invalid run trace: {reason}"),
            SocError::Fault { reason } => write!(f, "evaluation fault: {reason}"),
            SocError::Cancelled { reason } => write!(f, "run cancelled [{reason}]"),
        }
    }
}

impl Error for SocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SocError::InvalidDecision {
            reason: "5 big cores requested".into(),
        };
        assert!(e.to_string().contains("5 big cores"));
        let e = SocError::EmptyApplication { name: "fft".into() };
        assert!(e.to_string().contains("fft"));
        let e = SocError::InvalidParameter {
            name: "parallel_fraction",
            value: 1.5,
        };
        assert!(e.to_string().contains("parallel_fraction"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SocError>();
    }
}
