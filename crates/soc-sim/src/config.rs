//! DRM decisions and the enumerated decision space.
//!
//! A DRM decision is the four-tuple `(a_big, a_little, f_big, f_little)` of §II of the paper.
//! For the Exynos 5422 the space has 5 × 4 × 19 × 13 = 4 940 candidate configurations: zero to
//! four Big cores, one to four Little cores (one Little core must stay on for the OS), and the
//! per-cluster frequency tables of [`crate::cluster`].

use crate::cluster::ClusterParams;
use crate::{Result, SocError};
use serde::{Deserialize, Serialize};

/// One dynamic-resource-management decision: how many cores of each type are active and at
/// which frequency each cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DrmDecision {
    /// Number of active Big cores (0–4 on the Exynos 5422).
    pub big_cores: u8,
    /// Number of active Little cores (1–4; at least one runs the OS).
    pub little_cores: u8,
    /// Big-cluster frequency in MHz.
    pub big_freq_mhz: u32,
    /// Little-cluster frequency in MHz.
    pub little_freq_mhz: u32,
}

impl DrmDecision {
    /// Total number of active cores.
    pub fn active_cores(&self) -> u8 {
        self.big_cores + self.little_cores
    }
}

impl std::fmt::Display for DrmDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}B@{}MHz+{}L@{}MHz",
            self.big_cores, self.big_freq_mhz, self.little_cores, self.little_freq_mhz
        )
    }
}

/// The per-knob cardinalities of a decision space, in the order
/// (Big cores, Little cores, Big frequency, Little frequency).
///
/// Learned policies emit one categorical action per knob (paper §V-A "Policy representation"),
/// so they need to know how many choices each knob has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnobCardinalities {
    /// Number of choices for the count of active Big cores.
    pub big_core_options: usize,
    /// Number of choices for the count of active Little cores.
    pub little_core_options: usize,
    /// Number of Big-cluster frequency levels.
    pub big_freq_options: usize,
    /// Number of Little-cluster frequency levels.
    pub little_freq_options: usize,
}

impl KnobCardinalities {
    /// Total number of distinct DRM decisions.
    pub fn total_decisions(&self) -> usize {
        self.big_core_options
            * self.little_core_options
            * self.big_freq_options
            * self.little_freq_options
    }

    /// Cardinalities as an array in knob order.
    pub fn as_array(&self) -> [usize; 4] {
        [
            self.big_core_options,
            self.little_core_options,
            self.big_freq_options,
            self.little_freq_options,
        ]
    }
}

/// Enumerable decision space for a given pair of clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionSpace {
    big: ClusterParams,
    little: ClusterParams,
    min_little_cores: u8,
}

impl DecisionSpace {
    /// Builds the decision space of the Exynos 5422 (4 940 configurations).
    pub fn exynos5422() -> Self {
        DecisionSpace {
            big: ClusterParams::exynos5422_big(),
            little: ClusterParams::exynos5422_little(),
            min_little_cores: 1,
        }
    }

    /// Builds the decision space of the asymmetric hexa-core preset
    /// (3 × 4 × 20 × 15 = 3 600 configurations).
    pub fn hexa_asym() -> Self {
        DecisionSpace {
            big: ClusterParams::hexa_big(),
            little: ClusterParams::hexa_little(),
            min_little_cores: 1,
        }
    }

    /// Builds the decision space of the wearable preset (2 × 2 × 9 × 6 = 216 configurations).
    pub fn wearable() -> Self {
        DecisionSpace {
            big: ClusterParams::wearable_big(),
            little: ClusterParams::wearable_little(),
            min_little_cores: 1,
        }
    }

    /// Builds a decision space from explicit cluster parameters.
    ///
    /// `min_little_cores` is the number of Little cores that must always stay online (1 on the
    /// paper's platform, where the OS needs a core).
    pub fn new(big: ClusterParams, little: ClusterParams, min_little_cores: u8) -> Self {
        DecisionSpace {
            big,
            little,
            min_little_cores,
        }
    }

    /// Cluster parameters of the Big cluster.
    pub fn big_cluster(&self) -> &ClusterParams {
        &self.big
    }

    /// Cluster parameters of the Little cluster.
    pub fn little_cluster(&self) -> &ClusterParams {
        &self.little
    }

    /// Minimum number of Little cores that must stay active.
    pub fn min_little_cores(&self) -> u8 {
        self.min_little_cores
    }

    /// Knob cardinalities of this space.
    pub fn knob_cardinalities(&self) -> KnobCardinalities {
        KnobCardinalities {
            big_core_options: self.big.core_count as usize + 1,
            little_core_options: (self.little.core_count - self.min_little_cores) as usize + 1,
            big_freq_options: self.big.frequency_levels(),
            little_freq_options: self.little.frequency_levels(),
        }
    }

    /// Total number of candidate decisions (4 940 for the Exynos 5422).
    pub fn len(&self) -> usize {
        self.knob_cardinalities().total_decisions()
    }

    /// Returns `true` if the space is empty (never the case for valid clusters).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates that a decision is inside the space.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidDecision`] describing the first violated constraint.
    pub fn validate(&self, decision: &DrmDecision) -> Result<()> {
        if decision.big_cores > self.big.core_count {
            return Err(SocError::InvalidDecision {
                reason: format!(
                    "{} big cores requested but the cluster has {}",
                    decision.big_cores, self.big.core_count
                ),
            });
        }
        if decision.little_cores < self.min_little_cores
            || decision.little_cores > self.little.core_count
        {
            return Err(SocError::InvalidDecision {
                reason: format!(
                    "little cores must lie in [{}, {}], got {}",
                    self.min_little_cores, self.little.core_count, decision.little_cores
                ),
            });
        }
        if self.big.opp_for(decision.big_freq_mhz).is_none() {
            return Err(SocError::InvalidDecision {
                reason: format!("{} MHz is not a big-cluster OPP", decision.big_freq_mhz),
            });
        }
        if self.little.opp_for(decision.little_freq_mhz).is_none() {
            return Err(SocError::InvalidDecision {
                reason: format!(
                    "{} MHz is not a little-cluster OPP",
                    decision.little_freq_mhz
                ),
            });
        }
        Ok(())
    }

    /// Builds a decision from per-knob action indices, clamping each index to its knob's
    /// cardinality. This is how learned policies (which emit one categorical action per knob)
    /// convert their outputs into a platform configuration.
    pub fn decision_from_knob_indices(&self, indices: [usize; 4]) -> DrmDecision {
        let cards = self.knob_cardinalities();
        let big_cores = indices[0].min(cards.big_core_options - 1) as u8;
        let little_cores =
            self.min_little_cores + indices[1].min(cards.little_core_options - 1) as u8;
        let big_freq = self
            .big
            .opp_at_level(indices[2].min(cards.big_freq_options - 1))
            .frequency_mhz;
        let little_freq = self
            .little
            .opp_at_level(indices[3].min(cards.little_freq_options - 1))
            .frequency_mhz;
        DrmDecision {
            big_cores,
            little_cores,
            big_freq_mhz: big_freq,
            little_freq_mhz: little_freq,
        }
    }

    /// Returns the knob indices corresponding to a decision (the inverse of
    /// [`decision_from_knob_indices`](Self::decision_from_knob_indices) for valid decisions).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidDecision`] if the decision is outside the space.
    pub fn knob_indices_of(&self, decision: &DrmDecision) -> Result<[usize; 4]> {
        self.validate(decision)?;
        Ok([
            decision.big_cores as usize,
            (decision.little_cores - self.min_little_cores) as usize,
            self.big
                .level_of(decision.big_freq_mhz)
                .expect("validated above"),
            self.little
                .level_of(decision.little_freq_mhz)
                .expect("validated above"),
        ])
    }

    /// Enumerates every decision in the space, ordered by (big cores, little cores, big freq,
    /// little freq). Used by the imitation-learning oracle's exhaustive per-epoch search.
    pub fn iter(&self) -> impl Iterator<Item = DrmDecision> + '_ {
        let cards = self.knob_cardinalities();
        (0..cards.big_core_options).flat_map(move |b| {
            (0..cards.little_core_options).flat_map(move |l| {
                (0..cards.big_freq_options).flat_map(move |bf| {
                    (0..cards.little_freq_options)
                        .map(move |lf| self.decision_from_knob_indices([b, l, bf, lf]))
                })
            })
        })
    }

    /// The decision every governor starts from: all cores online at the lowest frequencies.
    pub fn initial_decision(&self) -> DrmDecision {
        DrmDecision {
            big_cores: self.big.core_count,
            little_cores: self.little.core_count,
            big_freq_mhz: self.big.min_frequency_mhz(),
            little_freq_mhz: self.little.min_frequency_mhz(),
        }
    }

    /// The maximum-performance decision: all cores at their highest frequencies.
    pub fn performance_decision(&self) -> DrmDecision {
        DrmDecision {
            big_cores: self.big.core_count,
            little_cores: self.little.core_count,
            big_freq_mhz: self.big.max_frequency_mhz(),
            little_freq_mhz: self.little.max_frequency_mhz(),
        }
    }

    /// The minimum-power decision: no Big cores, the minimum number of Little cores, lowest
    /// frequencies.
    pub fn powersave_decision(&self) -> DrmDecision {
        DrmDecision {
            big_cores: 0,
            little_cores: self.min_little_cores,
            big_freq_mhz: self.big.min_frequency_mhz(),
            little_freq_mhz: self.little.min_frequency_mhz(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exynos_space_has_4940_decisions() {
        let space = DecisionSpace::exynos5422();
        let cards = space.knob_cardinalities();
        assert_eq!(cards.big_core_options, 5);
        assert_eq!(cards.little_core_options, 4);
        assert_eq!(cards.big_freq_options, 19);
        assert_eq!(cards.little_freq_options, 13);
        assert_eq!(space.len(), 4940);
        assert!(!space.is_empty());
        assert_eq!(cards.as_array(), [5, 4, 19, 13]);
    }

    #[test]
    fn enumeration_yields_exactly_the_space() {
        let space = DecisionSpace::exynos5422();
        let all: Vec<DrmDecision> = space.iter().collect();
        assert_eq!(all.len(), 4940);
        // All decisions are valid and unique.
        let mut set = std::collections::HashSet::new();
        for d in &all {
            space.validate(d).unwrap();
            assert!(set.insert(*d));
        }
    }

    #[test]
    fn validation_catches_each_kind_of_violation() {
        let space = DecisionSpace::exynos5422();
        let valid = DrmDecision {
            big_cores: 2,
            little_cores: 3,
            big_freq_mhz: 1200,
            little_freq_mhz: 800,
        };
        assert!(space.validate(&valid).is_ok());

        let too_many_big = DrmDecision {
            big_cores: 5,
            ..valid
        };
        assert!(space.validate(&too_many_big).is_err());
        let zero_little = DrmDecision {
            little_cores: 0,
            ..valid
        };
        assert!(space.validate(&zero_little).is_err());
        let bad_big_freq = DrmDecision {
            big_freq_mhz: 1250,
            ..valid
        };
        assert!(space.validate(&bad_big_freq).is_err());
        let bad_little_freq = DrmDecision {
            little_freq_mhz: 1500,
            ..valid
        };
        assert!(space.validate(&bad_little_freq).is_err());
    }

    #[test]
    fn knob_indices_roundtrip() {
        let space = DecisionSpace::exynos5422();
        for (i, d) in space.iter().enumerate().step_by(371) {
            let idx = space.knob_indices_of(&d).unwrap();
            let back = space.decision_from_knob_indices(idx);
            assert_eq!(back, d, "roundtrip failed at enumeration index {i}");
        }
    }

    #[test]
    fn knob_indices_clamp_out_of_range() {
        let space = DecisionSpace::exynos5422();
        let d = space.decision_from_knob_indices([99, 99, 99, 99]);
        assert_eq!(d.big_cores, 4);
        assert_eq!(d.little_cores, 4);
        assert_eq!(d.big_freq_mhz, 2000);
        assert_eq!(d.little_freq_mhz, 1400);
        space.validate(&d).unwrap();
    }

    #[test]
    fn special_decisions_are_valid_and_extreme() {
        let space = DecisionSpace::exynos5422();
        let perf = space.performance_decision();
        let save = space.powersave_decision();
        let init = space.initial_decision();
        for d in [&perf, &save, &init] {
            space.validate(d).unwrap();
        }
        assert_eq!(perf.big_freq_mhz, 2000);
        assert_eq!(save.big_cores, 0);
        assert_eq!(save.little_cores, 1);
        assert_eq!(init.active_cores(), 8);
        assert!(perf.active_cores() > save.active_cores());
    }

    #[test]
    fn decision_display_is_compact() {
        let d = DrmDecision {
            big_cores: 2,
            little_cores: 1,
            big_freq_mhz: 1800,
            little_freq_mhz: 600,
        };
        assert_eq!(d.to_string(), "2B@1800MHz+1L@600MHz");
    }
}
