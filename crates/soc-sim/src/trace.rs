//! Recorded epoch-stream fixtures: serializable run traces and their aggregate re-fold.
//!
//! A [`RunTrace`] is the epoch stream of one [`crate::platform::Platform::run_application_with`]
//! run plus the header the fold needs (application name, measurement seed, initial junction
//! temperature). Re-folding the stream with [`RunTrace::aggregates`] performs **exactly** the
//! accumulation the streaming runner performs — same float operations in the same order — so
//! the replayed [`RunAggregates`] are bit-identical to the live simulation that recorded the
//! trace. That makes traces cheap, exactly reproducible stand-ins for the simulator: the
//! substrate of the `TraceReplay` evaluation backend in the `parmis` crate and of
//! golden-driven scenario ingestion.
//!
//! A [`TraceStore`] is a keyed collection of traces (key: application name + seed) that
//! round-trips losslessly through JSON via the vendored serde stack, so fixture files can be
//! committed, diffed and loaded without the simulator in the loop.

use crate::platform::{EpochResult, RunAggregates};
use crate::{Result, SocError};
use serde::{Deserialize, Serialize};

/// One recorded application run: fold header plus the full epoch stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Name of the application that was run (lookup key, with `seed`).
    pub application: String,
    /// Measurement-noise seed the run used (lookup key, with `application`).
    pub seed: u64,
    /// Hottest junction temperature of the platform's initial thermal state, in °C. The
    /// runner seeds its peak-temperature fold with this value *before* the first epoch, so
    /// the replayed fold needs it to reproduce `peak_temperature_c` exactly.
    pub initial_temperature_c: f64,
    /// The recorded epoch stream, in execution order.
    pub epochs: Vec<EpochResult>,
}

impl RunTrace {
    /// Re-folds the recorded epoch stream into [`RunAggregates`].
    ///
    /// This performs the streaming runner's accumulation verbatim — per epoch
    /// `time += time_s`, `energy += energy_j`, `instructions += counters.instructions_retired`
    /// (the runner folds `phase.instructions`, which the counter synthesis stores unchanged),
    /// rail energies as `power · time` products, and the peak-temperature max seeded from
    /// [`initial_temperature_c`](Self::initial_temperature_c) — so the result is bit-identical
    /// to the aggregates of the run that recorded the trace.
    pub fn aggregates(&self) -> RunAggregates {
        let mut total_time = 0.0;
        let mut total_energy = 0.0;
        let mut total_instructions = 0.0;
        let mut big_rail_energy = 0.0;
        let mut little_rail_energy = 0.0;
        let mut peak_temperature_c = self.initial_temperature_c;
        for epoch in &self.epochs {
            total_time += epoch.time_s;
            total_energy += epoch.energy_j;
            total_instructions += epoch.counters.instructions_retired;
            big_rail_energy += epoch.big_power_w * epoch.time_s;
            little_rail_energy += epoch.little_power_w * epoch.time_s;
            if epoch.temperature_c > peak_temperature_c {
                peak_temperature_c = epoch.temperature_c;
            }
        }
        let average_power_w = if total_time > 0.0 {
            total_energy / total_time
        } else {
            0.0
        };
        let ppw = if total_energy > 0.0 {
            total_instructions / 1e9 / total_energy
        } else {
            0.0
        };
        RunAggregates {
            epochs: self.epochs.len(),
            execution_time_s: total_time,
            energy_j: total_energy,
            instructions: total_instructions,
            big_rail_energy_j: big_rail_energy,
            little_rail_energy_j: little_rail_energy,
            average_power_w,
            ppw,
            peak_temperature_c,
        }
    }
}

/// A keyed collection of [`RunTrace`]s with lossless JSON round-tripping.
///
/// Lookup is by `(application, seed)`; inserting a trace with a key that is already present
/// replaces the previous recording (last write wins), so re-recording a fixture is
/// idempotent.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStore {
    /// The stored traces, in insertion order.
    traces: Vec<RunTrace>,
}

impl TraceStore {
    /// An empty store.
    pub fn new() -> Self {
        TraceStore::default()
    }

    /// Number of stored traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// `true` when no trace has been recorded.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// The stored traces, in insertion order.
    pub fn traces(&self) -> &[RunTrace] {
        &self.traces
    }

    /// Inserts `trace`, replacing any existing recording with the same
    /// `(application, seed)` key.
    pub fn insert(&mut self, trace: RunTrace) {
        match self
            .traces
            .iter_mut()
            .find(|t| t.application == trace.application && t.seed == trace.seed)
        {
            Some(slot) => *slot = trace,
            None => self.traces.push(trace),
        }
    }

    /// Looks a trace up by application name and measurement seed.
    pub fn lookup(&self, application: &str, seed: u64) -> Option<&RunTrace> {
        self.traces
            .iter()
            .find(|t| t.application == application && t.seed == seed)
    }

    /// Pretty-printed JSON form of the store (the fixture-file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace fields are always finite")
    }

    /// Parses a store from JSON text (the inverse of [`to_json`](Self::to_json)).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Trace`] for malformed JSON or a shape mismatch.
    pub fn from_json(text: &str) -> Result<Self> {
        serde_json::from_str(text).map_err(|e| SocError::Trace {
            reason: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::Benchmark;
    use crate::governor::OndemandGovernor;
    use crate::platform::{CollectEpochs, Platform};

    fn record(platform: &Platform, benchmark: Benchmark, seed: u64) -> (RunTrace, RunAggregates) {
        let app = benchmark.application();
        let mut governor = OndemandGovernor::new(platform.spec().clone());
        let mut collector = CollectEpochs::with_capacity(app.epoch_count());
        let aggregates = platform
            .run_application_with(&app, &mut governor, seed, &mut collector)
            .unwrap();
        let trace = RunTrace {
            application: app.name.to_string(),
            seed,
            initial_temperature_c: platform.spec().thermal_model().initial_state().hottest_c(),
            epochs: collector.into_epochs(),
        };
        (trace, aggregates)
    }

    #[test]
    fn refolded_trace_is_bit_identical_to_the_live_run() {
        let platform = Platform::odroid_xu3();
        let (trace, live) = record(&platform, Benchmark::Qsort, 17);
        assert_eq!(trace.aggregates(), live);
    }

    #[test]
    fn store_round_trips_through_json_and_replays_bitwise() {
        let platform = Platform::hexa_asym();
        let mut store = TraceStore::new();
        let (trace_a, live_a) = record(&platform, Benchmark::Fft, 3);
        let (trace_b, live_b) = record(&platform, Benchmark::Aes, 4);
        store.insert(trace_a);
        store.insert(trace_b);
        assert_eq!(store.len(), 2);

        let reloaded = TraceStore::from_json(&store.to_json()).unwrap();
        assert_eq!(reloaded, store, "fixture JSON round-trip is lossless");
        assert_eq!(reloaded.lookup("fft", 3).unwrap().aggregates(), live_a);
        assert_eq!(reloaded.lookup("aes", 4).unwrap().aggregates(), live_b);
        assert!(reloaded.lookup("fft", 99).is_none());
        assert!(reloaded.lookup("qsort", 3).is_none());

        assert!(TraceStore::from_json("{").is_err());
        assert!(TraceStore::from_json("{\"traces\": 3}").is_err());
    }

    #[test]
    fn insert_replaces_traces_with_the_same_key() {
        let platform = Platform::wearable();
        let mut store = TraceStore::new();
        let (trace, _) = record(&platform, Benchmark::Sha, 5);
        store.insert(trace.clone());
        let mut shortened = trace;
        shortened.epochs.truncate(1);
        store.insert(shortened.clone());
        assert_eq!(store.len(), 1);
        assert_eq!(store.lookup("sha", 5), Some(&shortened));
    }

    #[test]
    fn empty_trace_folds_to_zeroed_aggregates() {
        let trace = RunTrace {
            application: "none".into(),
            seed: 0,
            initial_temperature_c: 45.0,
            epochs: Vec::new(),
        };
        let agg = trace.aggregates();
        assert_eq!(agg.epochs, 0);
        assert_eq!(agg.execution_time_s, 0.0);
        assert_eq!(agg.average_power_w, 0.0);
        assert_eq!(agg.ppw, 0.0);
        assert_eq!(agg.peak_temperature_c, 45.0);
        assert!(TraceStore::new().is_empty());
        assert!(TraceStore::new().traces().is_empty());
    }
}
