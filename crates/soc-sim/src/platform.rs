//! The platform runner: executes applications under a DRM controller and reports the
//! observables the paper's evaluation uses (execution time, energy, PPW, per-epoch counters).

use crate::cluster::ClusterParams;
use crate::config::{DecisionSpace, DrmDecision};
use crate::counters::CounterSnapshot;
use crate::engine::{DecisionEntry, DecisionTable};
use crate::perf::PerfModel;
use crate::power::{PowerBreakdown, PowerModel, ThermalModel};
use crate::workload::Application;
use crate::{Result, SocError};
use fastmath::normal::LogNormalBlock;
use fastmath::Precision;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Costs of switching between DRM decisions at an epoch boundary.
///
/// Changing a cluster's frequency requires re-locking the PLL and re-settling the voltage
/// rail (hundreds of microseconds on the Exynos 5422); turning cores on or off goes through
/// the Linux hotplug path and costs milliseconds. On top of the latency, each transition can
/// charge an energy penalty (rail re-regulation, cache flush + state migration on hotplug).
/// Controllers that thrash between configurations — notably per-epoch greedy oracles that
/// ignore switching costs — pay for it here, exactly as they would on the real board.
///
/// The energy penalties default to **zero** so that platforms which predate them (and every
/// committed golden result) keep bit-identical energy totals; the newer platform presets
/// opt in with non-zero values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionModel {
    /// Time cost of changing one cluster's frequency, in milliseconds.
    pub freq_switch_ms: f64,
    /// Time cost per core brought online or taken offline, in milliseconds.
    pub hotplug_ms_per_core: f64,
    /// Energy cost of changing one cluster's frequency, in millijoules.
    pub freq_switch_energy_mj: f64,
    /// Energy cost per core brought online or taken offline, in millijoules.
    pub hotplug_energy_mj_per_core: f64,
}

impl Default for TransitionModel {
    fn default() -> Self {
        TransitionModel {
            freq_switch_ms: 0.2,
            hotplug_ms_per_core: 2.0,
            freq_switch_energy_mj: 0.0,
            hotplug_energy_mj_per_core: 0.0,
        }
    }
}

impl TransitionModel {
    /// Number of cluster-frequency changes and core on/off transitions between two decisions.
    fn switch_counts(previous: &DrmDecision, next: &DrmDecision) -> (u32, u32) {
        let freq_changes = u32::from(previous.big_freq_mhz != next.big_freq_mhz)
            + u32::from(previous.little_freq_mhz != next.little_freq_mhz);
        let core_changes = u32::from(previous.big_cores.abs_diff(next.big_cores))
            + u32::from(previous.little_cores.abs_diff(next.little_cores));
        (freq_changes, core_changes)
    }

    /// Extra wall-clock seconds incurred when switching from `previous` to `next`.
    pub fn switch_time_s(&self, previous: &DrmDecision, next: &DrmDecision) -> f64 {
        let (freq_changes, core_changes) = TransitionModel::switch_counts(previous, next);
        let ms = self.freq_switch_ms * freq_changes as f64
            + self.hotplug_ms_per_core * core_changes as f64;
        ms / 1e3
    }

    /// Extra joules drawn when switching from `previous` to `next` (zero with the default
    /// penalties).
    pub fn switch_energy_j(&self, previous: &DrmDecision, next: &DrmDecision) -> f64 {
        let (freq_changes, core_changes) = TransitionModel::switch_counts(previous, next);
        let mj = self.freq_switch_energy_mj * freq_changes as f64
            + self.hotplug_energy_mj_per_core * core_changes as f64;
        mj / 1e3
    }
}

/// Full static description of a simulated SoC: decision space plus model constants.
#[derive(Debug, Clone, PartialEq)]
pub struct SocSpec {
    decision_space: DecisionSpace,
    perf_model: PerfModel,
    power_model: PowerModel,
    transition_model: TransitionModel,
    thermal_model: ThermalModel,
    /// Relative standard deviation of the multiplicative measurement noise applied to epoch
    /// time and power (mimics sensor and run-to-run variation on the real board).
    measurement_noise: f64,
}

impl SocSpec {
    /// The Exynos-5422-like platform used throughout the reproduction.
    pub fn exynos5422() -> Self {
        SocSpec {
            decision_space: DecisionSpace::exynos5422(),
            perf_model: PerfModel::default(),
            power_model: PowerModel::default(),
            transition_model: TransitionModel::default(),
            thermal_model: ThermalModel::default(),
            measurement_noise: 0.01,
        }
    }

    /// An asymmetric big.LITTLE SoC in the style of a mid-2020s phone part: two fast
    /// out-of-order cores plus four efficiency cores, with per-cluster junction tracking,
    /// hottest-junction throttling and non-zero DVFS transition energy.
    pub fn hexa_asym() -> Self {
        SocSpec {
            decision_space: DecisionSpace::hexa_asym(),
            perf_model: PerfModel::default(),
            power_model: PowerModel {
                mem_base_power_w: 0.15,
                mem_energy_per_access_nj: 5.0,
                soc_base_power_w: 0.25,
            },
            transition_model: TransitionModel {
                freq_switch_ms: 0.15,
                hotplug_ms_per_core: 1.5,
                freq_switch_energy_mj: 0.8,
                hotplug_energy_mj_per_core: 6.0,
            },
            thermal_model: crate::thermal::ThermalModel {
                ambient_c: 25.0,
                resistance_c_per_w: 9.5,
                time_constant_s: 1.6,
                leakage_per_degree: 0.005,
                throttle_trip_c: 82.0,
                throttle_big_freq_mhz: 1400,
                per_cluster: Some(crate::thermal::PerClusterThermal::default()),
            },
            measurement_noise: 0.01,
        }
    }

    /// A wearable-class low-power SoC: one small application core plus two efficiency cores,
    /// a tiny package with a skin-temperature-driven trip point, Little-cluster throttling
    /// and comparatively expensive DVFS transitions.
    pub fn wearable() -> Self {
        SocSpec {
            decision_space: DecisionSpace::wearable(),
            perf_model: PerfModel {
                dram_latency_ns: 120.0,
                parallel_sync_overhead: 0.05,
                row_miss_fraction: 0.35,
            },
            power_model: PowerModel {
                mem_base_power_w: 0.02,
                mem_energy_per_access_nj: 4.0,
                soc_base_power_w: 0.03,
            },
            transition_model: TransitionModel {
                freq_switch_ms: 0.5,
                hotplug_ms_per_core: 3.0,
                freq_switch_energy_mj: 0.3,
                hotplug_energy_mj_per_core: 2.0,
            },
            thermal_model: crate::thermal::ThermalModel {
                ambient_c: 25.0,
                resistance_c_per_w: 45.0,
                time_constant_s: 1.2,
                leakage_per_degree: 0.006,
                throttle_trip_c: 38.0,
                throttle_big_freq_mhz: 600,
                per_cluster: Some(crate::thermal::PerClusterThermal {
                    big_resistance_c_per_w: 6.0,
                    little_resistance_c_per_w: 3.0,
                    cluster_time_constant_s: 0.3,
                    hysteresis_c: 2.0,
                    throttle_little: true,
                    throttle_little_freq_mhz: 400,
                }),
            },
            measurement_noise: 0.01,
        }
    }

    /// Builds a spec from explicit components.
    pub fn new(
        decision_space: DecisionSpace,
        perf_model: PerfModel,
        power_model: PowerModel,
        measurement_noise: f64,
    ) -> Self {
        SocSpec {
            decision_space,
            perf_model,
            power_model,
            transition_model: TransitionModel::default(),
            thermal_model: ThermalModel::default(),
            measurement_noise: measurement_noise.clamp(0.0, 0.2),
        }
    }

    /// Replaces the decision-transition cost model.
    pub fn with_transition_model(mut self, transition_model: TransitionModel) -> Self {
        self.transition_model = transition_model;
        self
    }

    /// The decision-transition cost model.
    pub fn transition_model(&self) -> &TransitionModel {
        &self.transition_model
    }

    /// Replaces the package thermal model.
    pub fn with_thermal_model(mut self, thermal_model: ThermalModel) -> Self {
        self.thermal_model = thermal_model;
        self
    }

    /// The package thermal model.
    pub fn thermal_model(&self) -> &ThermalModel {
        &self.thermal_model
    }

    /// The platform's decision space.
    pub fn decision_space(&self) -> &DecisionSpace {
        &self.decision_space
    }

    /// The performance-model constants.
    pub fn perf_model(&self) -> &PerfModel {
        &self.perf_model
    }

    /// The power-model constants.
    pub fn power_model(&self) -> &PowerModel {
        &self.power_model
    }

    /// Big-cluster parameters (shorthand).
    pub fn big_cluster(&self) -> &ClusterParams {
        self.decision_space.big_cluster()
    }

    /// Little-cluster parameters (shorthand).
    pub fn little_cluster(&self) -> &ClusterParams {
        self.decision_space.little_cluster()
    }

    /// Relative standard deviation of the multiplicative measurement noise.
    pub fn measurement_noise(&self) -> f64 {
        self.measurement_noise
    }
}

/// A dynamic resource manager: observes the previous epoch's counters and selects the
/// configuration for the next epoch.
///
/// Implemented by the stock governors ([`crate::governor`]), by the learned MLP policies in
/// the `policy` crate and by the RL/IL baselines.
pub trait DrmController {
    /// Chooses the configuration for the next epoch.
    ///
    /// `counters` are the hardware counters of the epoch that just finished (zeroed for the
    /// very first decision) and `previous` is the configuration that epoch ran with.
    fn decide(&mut self, counters: &CounterSnapshot, previous: &DrmDecision) -> DrmDecision;

    /// Called once before an application starts so stateful controllers can reset.
    fn reset(&mut self) {}

    /// Short name used in reports.
    fn name(&self) -> &str {
        "controller"
    }

    /// The controller's name as a shared string, used for [`RunSummary::controller`].
    ///
    /// The default allocates once per call; controllers that already hold an `Arc<str>`
    /// (e.g. learned policies evaluated thousands of times per PaRMIS run) override it with
    /// a refcount bump so repeated runs allocate nothing for their identity.
    fn shared_name(&self) -> Arc<str> {
        Arc::from(self.name())
    }
}

impl<T: DrmController + ?Sized> DrmController for Box<T> {
    fn decide(&mut self, counters: &CounterSnapshot, previous: &DrmDecision) -> DrmDecision {
        (**self).decide(counters, previous)
    }

    fn reset(&mut self) {
        (**self).reset();
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn shared_name(&self) -> Arc<str> {
        (**self).shared_name()
    }
}

/// Result of one decision epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochResult {
    /// Configuration the epoch ran with.
    pub decision: DrmDecision,
    /// Wall-clock duration in seconds (after measurement noise).
    pub time_s: f64,
    /// Energy in joules (after measurement noise).
    pub energy_j: f64,
    /// Average power in watts.
    pub power_w: f64,
    /// Big-cluster rail share of `power_w`, in watts (drives the per-cluster thermal model).
    pub big_power_w: f64,
    /// Little-cluster rail share of `power_w`, in watts.
    pub little_power_w: f64,
    /// Hottest tracked junction temperature at the end of the epoch, in °C. Standalone
    /// [`Platform::run_epoch`] calls report the ambient temperature; the full application
    /// runner overwrites it with the evolving thermal trajectory.
    pub temperature_c: f64,
    /// Hardware counters observed for this epoch.
    pub counters: CounterSnapshot,
}

/// Observer of the streaming application runner: receives every finished epoch by reference.
///
/// [`Platform::run_application_with`] drives the epoch loop and folds the aggregates itself;
/// the sink decides what (if anything) to retain per epoch. [`DiscardEpochs`] keeps nothing
/// (the policy-evaluation hot path — zero per-epoch heap traffic), [`CollectEpochs`]
/// materializes the full trace (what [`Platform::run_application`] uses to build the
/// backwards-compatible [`RunSummary`]).
pub trait EpochSink {
    /// Called once per finished epoch, in execution order, with the final (noise-adjusted)
    /// epoch result.
    fn on_epoch(&mut self, epoch: &EpochResult);

    /// Called once per epoch *before* it is simulated; returning an error aborts the run
    /// with that error and discards the partial aggregates. The default keeps every
    /// existing sink non-cancellable at zero cost; [`CancelEpochs`] overrides it to poll
    /// an external cancellation probe every N epochs. Aborting mid-run never truncates
    /// results — a cancelled evaluation is recomputed from scratch on resume, so
    /// cancellation timing can never leak into reported aggregates.
    fn poll_cancel(&mut self) -> Result<()> {
        Ok(())
    }
}

impl<S: EpochSink + ?Sized> EpochSink for &mut S {
    fn on_epoch(&mut self, epoch: &EpochResult) {
        (**self).on_epoch(epoch);
    }

    fn poll_cancel(&mut self) -> Result<()> {
        (**self).poll_cancel()
    }
}

/// Sink that drops every epoch: streaming runs that only need [`RunAggregates`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DiscardEpochs;

impl EpochSink for DiscardEpochs {
    fn on_epoch(&mut self, _epoch: &EpochResult) {}
}

/// Sink that materializes every epoch, reproducing the seed runner's per-epoch trace.
#[derive(Debug, Clone, Default)]
pub struct CollectEpochs {
    epochs: Vec<EpochResult>,
}

impl CollectEpochs {
    /// An empty collector.
    pub fn new() -> Self {
        CollectEpochs::default()
    }

    /// An empty collector with space reserved for `capacity` epochs.
    pub fn with_capacity(capacity: usize) -> Self {
        CollectEpochs {
            epochs: Vec::with_capacity(capacity),
        }
    }

    /// The collected epochs, in execution order.
    pub fn epochs(&self) -> &[EpochResult] {
        &self.epochs
    }

    /// Consumes the collector, returning the epoch trace.
    pub fn into_epochs(self) -> Vec<EpochResult> {
        self.epochs
    }
}

impl EpochSink for CollectEpochs {
    fn on_epoch(&mut self, epoch: &EpochResult) {
        self.epochs.push(epoch.clone());
    }
}

/// Sink decorator that makes any inner sink cooperatively cancellable: every `stride`
/// epochs it invokes a caller-supplied probe (typically a closure reading a cancellation
/// token) and aborts the run with the probe's error. The stride bounds the per-epoch
/// overhead; epochs themselves are untouched, so a wrapped run that is *not* cancelled
/// produces bit-identical aggregates to an unwrapped one.
#[derive(Debug)]
pub struct CancelEpochs<S, F> {
    inner: S,
    stride: usize,
    since_probe: usize,
    probe: F,
}

impl<S: EpochSink, F: FnMut() -> Result<()>> CancelEpochs<S, F> {
    /// Wraps `inner`, probing for cancellation every `stride` epochs (`stride` is clamped
    /// to at least 1; the first probe fires before the first epoch so an already-cancelled
    /// run does no work).
    pub fn new(inner: S, stride: usize, probe: F) -> Self {
        CancelEpochs {
            inner,
            stride: stride.max(1),
            since_probe: 0,
            probe,
        }
    }

    /// Consumes the decorator, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EpochSink, F: FnMut() -> Result<()>> EpochSink for CancelEpochs<S, F> {
    fn on_epoch(&mut self, epoch: &EpochResult) {
        self.inner.on_epoch(epoch);
    }

    fn poll_cancel(&mut self) -> Result<()> {
        if self.since_probe == 0 {
            (self.probe)()?;
        }
        self.since_probe += 1;
        if self.since_probe >= self.stride {
            self.since_probe = 0;
        }
        self.inner.poll_cancel()
    }
}

/// Aggregate observables of one application run, folded by the streaming runner without
/// materializing per-epoch results. Field-for-field identical to the corresponding
/// [`RunSummary`] aggregates (same accumulation order, bit-identical floats).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunAggregates {
    /// Number of decision epochs executed.
    pub epochs: usize,
    /// Total execution time in seconds.
    pub execution_time_s: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Total dynamic instructions executed.
    pub instructions: f64,
    /// Big-cluster rail energy in joules (`Σ big_power · epoch time`).
    pub big_rail_energy_j: f64,
    /// Little-cluster rail energy in joules.
    pub little_rail_energy_j: f64,
    /// Average power in watts.
    pub average_power_w: f64,
    /// Performance-per-watt in giga-instructions per joule.
    pub ppw: f64,
    /// Hottest junction temperature reached at any epoch boundary, in °C.
    pub peak_temperature_c: f64,
}

/// Aggregated outcome of running one application under one controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Application name (shared with [`Application::name`]; cloning is a refcount bump).
    pub application: Arc<str>,
    /// Controller name (see [`DrmController::shared_name`]).
    pub controller: Arc<str>,
    /// Total execution time in seconds.
    pub execution_time_s: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Average power in watts.
    pub average_power_w: f64,
    /// Performance-per-watt: giga-instructions per second per watt (equivalently GI/J).
    pub ppw: f64,
    /// Hottest junction temperature reached at any epoch boundary during the run, in °C.
    pub peak_temperature_c: f64,
    /// Per-epoch details, in execution order.
    pub epochs: Vec<EpochResult>,
}

impl RunSummary {
    /// The objective vector (execution time, energy) used by most of the paper's experiments,
    /// both to be minimized.
    pub fn time_energy_objectives(&self) -> Vec<f64> {
        vec![self.execution_time_s, self.energy_j]
    }

    /// The objective vector (execution time, −PPW): PPW is maximized in the paper, so it is
    /// negated to fit the minimization convention.
    pub fn time_ppw_objectives(&self) -> Vec<f64> {
        vec![self.execution_time_s, -self.ppw]
    }
}

/// The simulated platform: runs applications epoch by epoch under a [`DrmController`].
///
/// Construction precomputes the platform's [`DecisionTable`] (per-decision cluster state,
/// validity and throttle targets) and the measurement-noise distribution, so the epoch loop
/// is pure table lookups plus the phase-dependent model math. The table is shared behind an
/// `Arc`: cloning a platform never rebuilds it.
#[derive(Debug, Clone)]
pub struct Platform {
    spec: SocSpec,
    table: Arc<DecisionTable>,
    noise_dist: Option<LogNormal>,
    precision: Precision,
}

/// The per-run measurement-noise source, resolved once per application run from the
/// platform's precision tier.
///
/// Both variants consume the dedicated noise RNG in the same per-factor order (two
/// uniforms per factor), so the fast tier's factors track the exact tier's to kernel
/// error (~1e-12 relative) instead of being an independent realization.
// The `Fast` variant carries its fixed 128-draw block inline (~1 KiB): the source is
// resolved once per application run and lives on the runner's stack, and boxing it would
// put a heap allocation on the zero-allocation streaming path the bench asserts flat.
#[allow(clippy::large_enum_variant)]
enum NoiseSource {
    /// The seed's scalar Box–Muller (`rand_distr::LogNormal`), bit-identical.
    Exact(LogNormal),
    /// Batched Box–Muller over pre-drawn uniform blocks ([`fastmath::normal`]).
    Fast(LogNormalBlock),
}

impl NoiseSource {
    #[inline]
    fn next_factor(&mut self, rng: &mut StdRng) -> f64 {
        match self {
            NoiseSource::Exact(dist) => dist.sample(rng),
            NoiseSource::Fast(stream) => stream.next_factor(rng),
        }
    }
}

impl Platform {
    /// Creates the Exynos-5422-like platform used in all experiments.
    pub fn odroid_xu3() -> Self {
        Platform::new(SocSpec::exynos5422())
    }

    /// Creates the asymmetric hexa-core platform preset ([`SocSpec::hexa_asym`]).
    pub fn hexa_asym() -> Self {
        Platform::new(SocSpec::hexa_asym())
    }

    /// Creates the wearable-class platform preset ([`SocSpec::wearable`]).
    pub fn wearable() -> Self {
        Platform::new(SocSpec::wearable())
    }

    /// Creates a platform from an explicit spec, precomputing its decision table.
    pub fn new(spec: SocSpec) -> Self {
        let table = DecisionTable::new(spec.decision_space(), spec.thermal_model());
        let noise = spec.measurement_noise;
        let noise_dist = if noise > 0.0 {
            Some(LogNormal::new(0.0, noise).expect("valid lognormal"))
        } else {
            None
        };
        Platform {
            spec,
            table: Arc::new(table),
            noise_dist,
            precision: Precision::SeedExact,
        }
    }

    /// Returns this platform running on the given math tier.
    ///
    /// [`Precision::SeedExact`] (the default) keeps the seed's scalar Box–Muller noise
    /// path, bit-identical to every committed golden. [`Precision::Fast`] swaps the
    /// per-epoch draws for [`fastmath::normal::LogNormalBlock`] batches fed by the same
    /// dedicated noise RNG — deterministic, pinned by `tests/goldens/fastmath_sim.json`,
    /// and within ~1e-12 relative of the exact factors. Cloning shares the decision
    /// table either way.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// The math tier this platform runs on.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The platform's static description.
    pub fn spec(&self) -> &SocSpec {
        &self.spec
    }

    /// The platform's precomputed per-decision lookup table.
    pub fn decision_table(&self) -> &DecisionTable {
        &self.table
    }

    /// Resolves a decision to its dense table index, reproducing the seed's validation
    /// errors for decisions outside the space.
    #[inline]
    fn resolve_index(&self, decision: &DrmDecision) -> Result<usize> {
        match self.table.index_of(decision) {
            Some(index) => Ok(index),
            None => {
                // Table coverage is exactly the decision space, so validate() produces the
                // seed's error; the fallback arm guards against an (impossible) divergence.
                self.spec.decision_space().validate(decision)?;
                Err(SocError::InvalidDecision {
                    reason: format!("{decision} is valid but missing from the decision table"),
                })
            }
        }
    }

    /// Computes one epoch's result from a precomputed table entry and throughput state (no
    /// validation, no OPP scans, only phase-dependent math). Bit-identical to the seed's
    /// `run_epoch` body for every decision in the space.
    #[inline]
    fn epoch_from_entry(
        &self,
        entry: &DecisionEntry,
        phase: &crate::workload::PhaseSpec,
        throughput: &crate::perf::EpochThroughput,
    ) -> EpochResult {
        let big = self.spec.big_cluster();
        let little = self.spec.little_cluster();
        let decision = &entry.decision;
        let perf = PerfModel::run_epoch_with(throughput, decision, phase);
        let ips = if perf.time_s > 0.0 {
            phase.instructions / perf.time_s
        } else {
            0.0
        };
        let power = PowerBreakdown {
            big_w: entry.big_power_w(perf.big_utilization),
            little_w: entry.little_power_w(perf.little_utilization),
            mem_w: self.spec.power_model().memory_power(phase, ips),
            base_w: self.spec.power_model().soc_base_power_w,
        };
        let counters = CounterSnapshot::from_epoch(big, little, decision, phase, &perf, &power);
        let power_w = power.total_w();
        EpochResult {
            decision: *decision,
            time_s: perf.time_s,
            energy_j: power_w * perf.time_s,
            power_w,
            big_power_w: power.big_w,
            little_power_w: power.little_w,
            temperature_c: self.spec.thermal_model().ambient_c,
            counters,
        }
    }

    /// Runs a single epoch under `decision`, returning its result (without measurement
    /// noise; the application runner adds noise so that repeated evaluations differ slightly).
    ///
    /// # Errors
    ///
    /// Returns [`crate::SocError::InvalidDecision`] if the decision is outside the platform's
    /// decision space.
    pub fn run_epoch(
        &self,
        decision: &DrmDecision,
        phase: &crate::workload::PhaseSpec,
    ) -> Result<EpochResult> {
        let entry = self.table.entry(self.resolve_index(decision)?);
        let throughput = self.spec.perf_model().epoch_throughput(
            self.spec.big_cluster(),
            self.spec.little_cluster(),
            &entry.decision,
            phase,
        );
        Ok(self.epoch_from_entry(entry, phase, &throughput))
    }

    /// Runs `app` end to end under `controller`, streaming every finished epoch into `sink`
    /// and folding the aggregates without materializing per-epoch results.
    ///
    /// This is the simulation hot path: with a [`DiscardEpochs`] sink the loop performs no
    /// heap allocation per epoch — decisions resolve through the precomputed
    /// [`DecisionTable`] (including throttle capping), and only the phase-dependent
    /// performance/power math runs per epoch. [`run_application`](Self::run_application) is
    /// a thin wrapper that collects the epochs; both paths produce bit-identical numbers.
    ///
    /// `seed` controls the deterministic measurement noise exactly as in
    /// [`run_application`](Self::run_application).
    ///
    /// # Errors
    ///
    /// Returns [`crate::SocError::InvalidDecision`] if the controller emits a configuration
    /// outside the decision space (learned policies built from knob indices cannot trigger
    /// this, but hand-written controllers can).
    pub fn run_application_with<S: EpochSink + ?Sized>(
        &self,
        app: &Application,
        controller: &mut dyn DrmController,
        seed: u64,
        sink: &mut S,
    ) -> Result<RunAggregates> {
        controller.reset();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        let mut noise = match (self.noise_dist, self.precision) {
            (Some(dist), Precision::SeedExact) => Some(NoiseSource::Exact(dist)),
            (Some(_), Precision::Fast) => Some(NoiseSource::Fast(LogNormalBlock::new(
                self.spec.measurement_noise,
            ))),
            (None, _) => None,
        };

        let mut previous = self.spec.decision_space().initial_decision();
        let mut counters = CounterSnapshot::zeroed();
        let mut total_time = 0.0;
        let mut total_energy = 0.0;
        let mut total_instructions = 0.0;
        let mut big_rail_energy = 0.0;
        let mut little_rail_energy = 0.0;
        let thermal = *self.spec.thermal_model();
        let transition = *self.spec.transition_model();
        let mut thermal_state = thermal.initial_state();
        let mut peak_temperature_c = thermal_state.hottest_c();
        // Last (decision index, phase rates) → throughput state. Consecutive epochs almost
        // always repeat both (generators jitter only instruction counts; controllers hold
        // decisions across stretches), so the throughput derivation — the only part of the
        // epoch model that is not instruction-scaled — runs once per stretch instead of
        // once per epoch. Memoized values are the exact f64s a fresh derivation produces.
        let mut throughput_memo: Option<(usize, [f64; 5], crate::perf::EpochThroughput)> = None;
        // Last requested decision → dense index, for the same repeat-stretch reason: a hit
        // replaces even the two binary searches with one 12-byte comparison.
        let mut lookup_memo: Option<(DrmDecision, usize)> = None;

        for phase in &app.epochs {
            // Cooperative cancellation boundary: the sink may abort the run here (the
            // default sink never does). Partial aggregates are discarded with the error.
            sink.poll_cancel()?;
            let requested = controller.decide(&counters, &previous);
            // Thermal throttling: while the throttle is engaged the clusters cannot exceed
            // their ceilings, regardless of what the controller asked for. The throttled
            // target of every in-space decision is precomputed; out-of-space requests fall
            // back to the slow capping path so the seed's semantics (the *capped* decision
            // is what gets validated) are preserved exactly.
            let throttling = thermal.throttles(&thermal_state);
            let mut index = match &lookup_memo {
                Some((memo_decision, memo_index)) if *memo_decision == requested => *memo_index,
                _ => match self.table.index_of(&requested) {
                    Some(index) => {
                        lookup_memo = Some((requested, index));
                        index
                    }
                    None => {
                        let capped = thermal.cap_decision(
                            throttling,
                            &requested,
                            self.spec.big_cluster(),
                            self.spec.little_cluster(),
                        );
                        // cap_decision is idempotent, so the throttle re-application below
                        // is harmless for this (error-bound) path.
                        self.resolve_index(&capped)?
                    }
                },
            };
            if throttling {
                index = self.table.entry(index).throttled_index;
            }
            let entry = self.table.entry(index);
            let decision = entry.decision;
            let rates = [
                phase.memory_refs_per_instr,
                phase.l2_miss_rate,
                phase.branch_fraction,
                phase.branch_miss_rate,
                phase.ilp_scale,
            ];
            let throughput = match &throughput_memo {
                Some((memo_index, memo_rates, memo_tp))
                    if *memo_index == index && *memo_rates == rates =>
                {
                    *memo_tp
                }
                _ => {
                    let tp = self.spec.perf_model().epoch_throughput(
                        self.spec.big_cluster(),
                        self.spec.little_cluster(),
                        &decision,
                        phase,
                    );
                    throughput_memo = Some((index, rates, tp));
                    tp
                }
            };
            let mut result = self.epoch_from_entry(entry, phase, &throughput);
            // Temperature-dependent leakage inflates the measured power.
            let leakage_scale = thermal.leakage_multiplier(thermal_state.die_c);
            result.power_w *= leakage_scale;
            result.big_power_w *= leakage_scale;
            result.little_power_w *= leakage_scale;
            // Pay the DVFS / hotplug switching latency for changing the configuration; the
            // extra time is spent at the new configuration's power level.
            let switch_s = transition.switch_time_s(&previous, &decision);
            if switch_s > 0.0 {
                result.time_s += switch_s;
            }
            if let Some(source) = &mut noise {
                let time_factor: f64 = source.next_factor(&mut rng);
                let power_factor: f64 = source.next_factor(&mut rng);
                result.time_s *= time_factor;
                result.power_w *= power_factor;
                result.big_power_w *= power_factor;
                result.little_power_w *= power_factor;
            }
            result.counters.total_chip_power_w = result.power_w;
            // Energy is computed exactly once, after every adjustment to its two factors
            // (leakage and noise scale the power, switch latency and noise stretch the
            // time). The seed recomputed `time · power` after each step and overwrote the
            // previous value, so folding the chain into one final product is bit-identical;
            // only the switch *energy* penalty sits outside the measurement-noise model.
            result.energy_j = result.time_s * result.power_w;
            let switch_j = transition.switch_energy_j(&previous, &decision);
            if switch_j > 0.0 {
                result.energy_j += switch_j;
            }
            total_time += result.time_s;
            total_energy += result.energy_j;
            total_instructions += phase.instructions;
            big_rail_energy += result.big_power_w * result.time_s;
            little_rail_energy += result.little_power_w * result.time_s;
            thermal_state = thermal.advance(
                &thermal_state,
                result.big_power_w,
                result.little_power_w,
                result.power_w,
                result.time_s,
            );
            result.temperature_c = thermal_state.hottest_c();
            if result.temperature_c > peak_temperature_c {
                peak_temperature_c = result.temperature_c;
            }
            counters = result.counters;
            previous = decision;
            sink.on_epoch(&result);
        }

        let average_power_w = if total_time > 0.0 {
            total_energy / total_time
        } else {
            0.0
        };
        // PPW = throughput per watt = (instr / s) / W = instr / J; report in giga-instructions
        // per joule so the magnitudes resemble the paper's 0.4–1.2 range.
        let ppw = if total_energy > 0.0 {
            total_instructions / 1e9 / total_energy
        } else {
            0.0
        };

        Ok(RunAggregates {
            epochs: app.epoch_count(),
            execution_time_s: total_time,
            energy_j: total_energy,
            instructions: total_instructions,
            big_rail_energy_j: big_rail_energy,
            little_rail_energy_j: little_rail_energy,
            average_power_w,
            ppw,
            peak_temperature_c,
        })
    }

    /// Runs `app` end to end under `controller`, materializing the per-epoch trace.
    ///
    /// `seed` controls the deterministic measurement noise; two runs with the same seed,
    /// application and controller produce identical summaries. This is a thin collecting
    /// sink over [`run_application_with`](Self::run_application_with); callers that only
    /// need the aggregates should use the streaming form directly.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SocError::InvalidDecision`] if the controller emits a configuration
    /// outside the decision space (learned policies built from knob indices cannot trigger
    /// this, but hand-written controllers can).
    pub fn run_application(
        &self,
        app: &Application,
        controller: &mut dyn DrmController,
        seed: u64,
    ) -> Result<RunSummary> {
        let mut collector = CollectEpochs::with_capacity(app.epoch_count());
        let aggregates = self.run_application_with(app, controller, seed, &mut collector)?;
        Ok(RunSummary {
            application: app.name.clone(),
            controller: controller.shared_name(),
            execution_time_s: aggregates.execution_time_s,
            energy_j: aggregates.energy_j,
            average_power_w: aggregates.average_power_w,
            ppw: aggregates.ppw,
            peak_temperature_c: aggregates.peak_temperature_c,
            epochs: collector.into_epochs(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ApplicationBuilder, PhaseSpec};

    struct FixedController(DrmDecision);

    impl DrmController for FixedController {
        fn decide(&mut self, _: &CounterSnapshot, _: &DrmDecision) -> DrmDecision {
            self.0
        }

        fn name(&self) -> &str {
            "fixed"
        }
    }

    fn test_phase() -> PhaseSpec {
        PhaseSpec {
            name: "p".into(),
            instructions: 60e6,
            parallel_fraction: 0.5,
            memory_refs_per_instr: 0.25,
            l2_miss_rate: 0.04,
            branch_fraction: 0.1,
            branch_miss_rate: 0.05,
            ilp_scale: 0.85,
        }
    }

    fn test_app(epochs: usize) -> Application {
        ApplicationBuilder::new("test-app")
            .phase(test_phase(), epochs)
            .jitter(0.05)
            .build()
            .unwrap()
    }

    #[test]
    fn epoch_run_validates_decisions() {
        let platform = Platform::odroid_xu3();
        let bad = DrmDecision {
            big_cores: 9,
            little_cores: 1,
            big_freq_mhz: 1000,
            little_freq_mhz: 1000,
        };
        assert!(platform.run_epoch(&bad, &test_phase()).is_err());
    }

    #[test]
    fn run_summary_accumulates_epochs() {
        let platform = Platform::odroid_xu3();
        let app = test_app(10);
        let decision = DrmDecision {
            big_cores: 2,
            little_cores: 2,
            big_freq_mhz: 1400,
            little_freq_mhz: 1000,
        };
        let summary = platform
            .run_application(&app, &mut FixedController(decision), 3)
            .unwrap();
        assert_eq!(summary.epochs.len(), 10);
        assert_eq!(&*summary.application, "test-app");
        assert_eq!(&*summary.controller, "fixed");
        let sum_time: f64 = summary.epochs.iter().map(|e| e.time_s).sum();
        let sum_energy: f64 = summary.epochs.iter().map(|e| e.energy_j).sum();
        assert!((sum_time - summary.execution_time_s).abs() < 1e-9);
        assert!((sum_energy - summary.energy_j).abs() < 1e-9);
        assert!(summary.ppw > 0.0);
        assert!(summary.average_power_w > 0.0);
    }

    #[test]
    fn runs_are_reproducible_for_identical_seeds() {
        let platform = Platform::odroid_xu3();
        let app = test_app(8);
        let decision = DrmDecision {
            big_cores: 1,
            little_cores: 3,
            big_freq_mhz: 800,
            little_freq_mhz: 600,
        };
        let a = platform
            .run_application(&app, &mut FixedController(decision), 42)
            .unwrap();
        let b = platform
            .run_application(&app, &mut FixedController(decision), 42)
            .unwrap();
        assert_eq!(a, b);
        let c = platform
            .run_application(&app, &mut FixedController(decision), 43)
            .unwrap();
        assert_ne!(a.execution_time_s, c.execution_time_s);
        // Noise is small: within a couple of percent.
        assert!((a.execution_time_s - c.execution_time_s).abs() / a.execution_time_s < 0.05);
    }

    #[test]
    fn performance_config_dominates_powersave_in_time_but_not_energy() {
        let platform = Platform::odroid_xu3();
        let app = test_app(12);
        let space = platform.spec().decision_space().clone();
        let perf = platform
            .run_application(&app, &mut FixedController(space.performance_decision()), 1)
            .unwrap();
        let save = platform
            .run_application(&app, &mut FixedController(space.powersave_decision()), 1)
            .unwrap();
        assert!(perf.execution_time_s < save.execution_time_s);
        assert!(perf.average_power_w > save.average_power_w);
        // Energy trade-off: the fast configuration burns more joules than the frugal one on
        // this balanced workload.
        assert!(perf.energy_j > save.energy_j);
    }

    #[test]
    fn objective_vectors_follow_minimization_convention() {
        let platform = Platform::odroid_xu3();
        let app = test_app(4);
        let d = DrmDecision {
            big_cores: 2,
            little_cores: 1,
            big_freq_mhz: 1000,
            little_freq_mhz: 600,
        };
        let s = platform
            .run_application(&app, &mut FixedController(d), 0)
            .unwrap();
        let te = s.time_energy_objectives();
        assert_eq!(te, vec![s.execution_time_s, s.energy_j]);
        let tp = s.time_ppw_objectives();
        assert_eq!(tp[0], s.execution_time_s);
        assert!(
            tp[1] < 0.0,
            "PPW objective must be negated for minimization"
        );
    }

    #[test]
    fn boxed_controllers_are_usable() {
        let platform = Platform::odroid_xu3();
        let app = test_app(3);
        let d = DrmDecision {
            big_cores: 0,
            little_cores: 2,
            big_freq_mhz: 200,
            little_freq_mhz: 800,
        };
        let mut boxed: Box<dyn DrmController> = Box::new(FixedController(d));
        let summary = platform.run_application(&app, &mut boxed, 5).unwrap();
        assert_eq!(&*summary.controller, "fixed");
        assert_eq!(summary.epochs[0].decision, d);
    }

    #[test]
    fn sustained_maximum_performance_triggers_thermal_throttling() {
        // Running flat out heats the package past the trip point; later epochs must then run
        // at the throttled Big frequency even though the controller keeps requesting 2 GHz.
        // A long, power-hungry benchmark (PCA) gives the package time to heat up.
        let platform = Platform::odroid_xu3();
        let app = crate::apps::Benchmark::Pca.application();
        let space = platform.spec().decision_space().clone();
        let summary = platform
            .run_application(&app, &mut FixedController(space.performance_decision()), 0)
            .unwrap();
        let throttle_cap = platform.spec().thermal_model().throttle_big_freq_mhz;
        let first = summary.epochs.first().unwrap();
        assert_eq!(
            first.decision.big_freq_mhz, 2000,
            "cold start runs unthrottled"
        );
        let throttled_epochs = summary
            .epochs
            .iter()
            .filter(|e| e.decision.big_freq_mhz == throttle_cap)
            .count();
        assert!(
            throttled_epochs > 0,
            "sustained max-performance operation must hit thermal throttling"
        );
        // A frugal configuration never throttles.
        let cool = platform
            .run_application(&app, &mut FixedController(space.powersave_decision()), 0)
            .unwrap();
        assert!(cool.epochs.iter().all(|e| e.decision.big_freq_mhz == 200));
    }

    #[test]
    fn leakage_heating_makes_late_epochs_more_expensive_than_early_ones() {
        let platform = Platform::odroid_xu3();
        let app = test_app(40);
        let space = platform.spec().decision_space().clone();
        // A warm but not throttling configuration: leakage rises with temperature, so the
        // average power of the last epochs exceeds the first epoch's.
        let decision = DrmDecision {
            big_cores: 4,
            little_cores: 4,
            big_freq_mhz: 1400,
            little_freq_mhz: 1000,
        };
        space.validate(&decision).unwrap();
        let summary = platform
            .run_application(&app, &mut FixedController(decision), 0)
            .unwrap();
        let first_power = summary.epochs[0].power_w;
        let late_power: f64 = summary.epochs[30..].iter().map(|e| e.power_w).sum::<f64>() / 10.0;
        assert!(
            late_power > first_power * 1.02,
            "late epochs ({late_power} W) should draw more power than the first ({first_power} W)"
        );
    }

    #[test]
    fn transition_model_charges_for_frequency_and_core_changes() {
        let model = TransitionModel::default();
        let a = DrmDecision {
            big_cores: 4,
            little_cores: 4,
            big_freq_mhz: 1000,
            little_freq_mhz: 800,
        };
        // No change: free.
        assert_eq!(model.switch_time_s(&a, &a), 0.0);
        // One frequency change.
        let b = DrmDecision {
            big_freq_mhz: 1200,
            ..a
        };
        assert!((model.switch_time_s(&a, &b) - 0.0002).abs() < 1e-12);
        // Two frequency changes plus two cores hotplugged off.
        let c = DrmDecision {
            big_cores: 2,
            big_freq_mhz: 1200,
            little_freq_mhz: 600,
            ..a
        };
        assert!((model.switch_time_s(&a, &c) - (0.0004 + 0.004)).abs() < 1e-12);
    }

    /// A controller that alternates between two very different configurations every epoch.
    struct ThrashingController {
        flip: bool,
    }

    impl DrmController for ThrashingController {
        fn decide(&mut self, _: &CounterSnapshot, _: &DrmDecision) -> DrmDecision {
            self.flip = !self.flip;
            if self.flip {
                DrmDecision {
                    big_cores: 4,
                    little_cores: 4,
                    big_freq_mhz: 2000,
                    little_freq_mhz: 1400,
                }
            } else {
                DrmDecision {
                    big_cores: 0,
                    little_cores: 1,
                    big_freq_mhz: 2000,
                    little_freq_mhz: 1400,
                }
            }
        }

        fn name(&self) -> &str {
            "thrash"
        }
    }

    #[test]
    fn configuration_thrashing_costs_time_relative_to_a_stable_controller() {
        // Compare a thrashing controller against pinning each of its two configurations on a
        // platform without measurement noise; the thrash run must be slower than the average
        // of the two pinned runs because of the hotplug penalties it keeps paying.
        let spec = SocSpec::new(
            DecisionSpace::exynos5422(),
            crate::perf::PerfModel::default(),
            crate::power::PowerModel::default(),
            0.0,
        );
        let platform = Platform::new(spec);
        let app = test_app(20);
        let thrash = platform
            .run_application(&app, &mut ThrashingController { flip: false }, 0)
            .unwrap();
        let fast = platform
            .run_application(
                &app,
                &mut FixedController(DrmDecision {
                    big_cores: 4,
                    little_cores: 4,
                    big_freq_mhz: 2000,
                    little_freq_mhz: 1400,
                }),
                0,
            )
            .unwrap();
        let small = platform
            .run_application(
                &app,
                &mut FixedController(DrmDecision {
                    big_cores: 0,
                    little_cores: 1,
                    big_freq_mhz: 2000,
                    little_freq_mhz: 1400,
                }),
                0,
            )
            .unwrap();
        let stable_mean = (fast.execution_time_s + small.execution_time_s) / 2.0;
        assert!(
            thrash.execution_time_s > stable_mean,
            "thrashing ({}) should be slower than the mean of its two pinned configurations ({})",
            thrash.execution_time_s,
            stable_mean
        );
    }

    #[test]
    fn ppw_magnitude_is_in_papers_range() {
        // The paper's Fig. 6 reports PPW roughly between 0.4 and 1.2; the simulator should
        // land in the same order of magnitude.
        let platform = Platform::odroid_xu3();
        let app = test_app(10);
        let space = platform.spec().decision_space().clone();
        for d in [space.performance_decision(), space.powersave_decision()] {
            let s = platform
                .run_application(&app, &mut FixedController(d), 2)
                .unwrap();
            assert!(
                s.ppw > 0.05 && s.ppw < 5.0,
                "ppw {} out of plausible range",
                s.ppw
            );
        }
    }
}
