//! Core-cluster models: operating performance points (OPPs), voltages and per-cluster
//! micro-architectural parameters for the two Exynos-5422-like clusters.

use serde::{Deserialize, Serialize};

/// Which of the two heterogeneous clusters a core belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClusterKind {
    /// Out-of-order Cortex-A15-like "Big" cluster: high IPC, high power.
    Big,
    /// In-order Cortex-A7-like "Little" cluster: lower IPC, far lower power.
    Little,
}

impl ClusterKind {
    /// Both cluster kinds, Big first (matching the paper's decision-tuple order).
    pub const ALL: [ClusterKind; 2] = [ClusterKind::Big, ClusterKind::Little];
}

impl std::fmt::Display for ClusterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterKind::Big => write!(f, "big"),
            ClusterKind::Little => write!(f, "little"),
        }
    }
}

/// A single operating performance point: a frequency and the voltage the cluster's rail must
/// supply to sustain it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Core clock in MHz.
    pub frequency_mhz: u32,
    /// Supply voltage in volts.
    pub voltage_v: f64,
}

/// Static description of one cluster: its OPP table and the micro-architectural constants the
/// performance and power models need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterParams {
    /// Which cluster this describes.
    pub kind: ClusterKind,
    /// Number of physical cores in the cluster.
    pub core_count: u8,
    /// Ordered OPP table (ascending frequency).
    pub opps: Vec<OperatingPoint>,
    /// Peak sustainable instructions per cycle for compute-bound code.
    pub peak_ipc: f64,
    /// Effective switched capacitance per core in nF (scales dynamic power `C·V²·f`).
    pub capacitance_nf: f64,
    /// Leakage coefficient in W/V² per active core (static power ≈ `k·V²`).
    pub leakage_w_per_v2: f64,
    /// Additional pipeline-stall penalty (in cycles) applied per L2 miss on top of the DRAM
    /// latency; models the in-order A7's inability to hide misses.
    pub miss_stall_overhead_cycles: f64,
    /// Branch-misprediction penalty in cycles.
    pub branch_miss_penalty_cycles: f64,
}

impl ClusterParams {
    /// Parameters of the A15-like Big cluster of the Exynos 5422: 4 cores, 200 MHz – 2 GHz in
    /// 100 MHz steps (19 OPPs), out-of-order with peak IPC ≈ 1.6.
    pub fn exynos5422_big() -> Self {
        ClusterParams {
            kind: ClusterKind::Big,
            core_count: 4,
            opps: build_opps(200, 2000, 100, 0.90, 1.3625),
            peak_ipc: 1.6,
            capacitance_nf: 0.42,
            leakage_w_per_v2: 0.09,
            miss_stall_overhead_cycles: 6.0,
            branch_miss_penalty_cycles: 15.0,
        }
    }

    /// Parameters of the A7-like Little cluster of the Exynos 5422: 4 cores, 200 MHz – 1.4 GHz
    /// in 100 MHz steps (13 OPPs), in-order with peak IPC ≈ 0.9.
    pub fn exynos5422_little() -> Self {
        ClusterParams {
            kind: ClusterKind::Little,
            core_count: 4,
            opps: build_opps(200, 1400, 100, 0.90, 1.25),
            peak_ipc: 0.9,
            capacitance_nf: 0.12,
            leakage_w_per_v2: 0.02,
            miss_stall_overhead_cycles: 14.0,
            branch_miss_penalty_cycles: 8.0,
        }
    }

    /// Big cluster of the asymmetric hexa-core preset: two wide out-of-order cores
    /// (Cortex-A76-like), 500 MHz – 2.4 GHz in 100 MHz steps (20 OPPs), peak IPC ≈ 2.2.
    pub fn hexa_big() -> Self {
        ClusterParams {
            kind: ClusterKind::Big,
            core_count: 2,
            opps: build_opps(500, 2400, 100, 0.80, 1.30),
            peak_ipc: 2.2,
            capacitance_nf: 0.55,
            leakage_w_per_v2: 0.11,
            miss_stall_overhead_cycles: 5.0,
            branch_miss_penalty_cycles: 14.0,
        }
    }

    /// Little cluster of the asymmetric hexa-core preset: four efficiency cores
    /// (Cortex-A55-like), 200 MHz – 1.6 GHz in 100 MHz steps (15 OPPs), peak IPC ≈ 1.1.
    pub fn hexa_little() -> Self {
        ClusterParams {
            kind: ClusterKind::Little,
            core_count: 4,
            opps: build_opps(200, 1600, 100, 0.75, 1.15),
            peak_ipc: 1.1,
            capacitance_nf: 0.10,
            leakage_w_per_v2: 0.018,
            miss_stall_overhead_cycles: 12.0,
            branch_miss_penalty_cycles: 8.0,
        }
    }

    /// "Big" cluster of the wearable preset: one small application core, 300 MHz – 1.1 GHz
    /// in 100 MHz steps (9 OPPs).
    pub fn wearable_big() -> Self {
        ClusterParams {
            kind: ClusterKind::Big,
            core_count: 1,
            opps: build_opps(300, 1100, 100, 0.70, 1.05),
            peak_ipc: 1.2,
            capacitance_nf: 0.18,
            leakage_w_per_v2: 0.03,
            miss_stall_overhead_cycles: 8.0,
            branch_miss_penalty_cycles: 12.0,
        }
    }

    /// Little cluster of the wearable preset: two in-order efficiency cores, 100 MHz –
    /// 600 MHz in 100 MHz steps (6 OPPs).
    pub fn wearable_little() -> Self {
        ClusterParams {
            kind: ClusterKind::Little,
            core_count: 2,
            opps: build_opps(100, 600, 100, 0.65, 0.90),
            peak_ipc: 0.7,
            capacitance_nf: 0.05,
            leakage_w_per_v2: 0.008,
            miss_stall_overhead_cycles: 16.0,
            branch_miss_penalty_cycles: 6.0,
        }
    }

    /// Number of OPPs (frequency levels) supported by the cluster.
    pub fn frequency_levels(&self) -> usize {
        self.opps.len()
    }

    /// Lowest supported frequency in MHz.
    pub fn min_frequency_mhz(&self) -> u32 {
        self.opps.first().map(|o| o.frequency_mhz).unwrap_or(0)
    }

    /// Highest supported frequency in MHz.
    pub fn max_frequency_mhz(&self) -> u32 {
        self.opps.last().map(|o| o.frequency_mhz).unwrap_or(0)
    }

    /// Returns the OPP for an exact frequency, or `None` if the frequency is not supported.
    pub fn opp_for(&self, frequency_mhz: u32) -> Option<OperatingPoint> {
        self.opps
            .iter()
            .copied()
            .find(|o| o.frequency_mhz == frequency_mhz)
    }

    /// Returns the index of an exact frequency in the OPP table, or `None`.
    pub fn level_of(&self, frequency_mhz: u32) -> Option<usize> {
        self.opps
            .iter()
            .position(|o| o.frequency_mhz == frequency_mhz)
    }

    /// Returns the OPP at a given level index, clamping to the table bounds.
    pub fn opp_at_level(&self, level: usize) -> OperatingPoint {
        let idx = level.min(self.opps.len().saturating_sub(1));
        self.opps[idx]
    }

    /// Returns the supported frequency closest to `frequency_mhz` (ties resolve downward).
    pub fn nearest_frequency(&self, frequency_mhz: u32) -> u32 {
        self.opps
            .iter()
            .min_by_key(|o| {
                let diff = o.frequency_mhz.abs_diff(frequency_mhz);
                // Prefer the lower frequency on ties by adding a tiny bias for higher ones.
                (diff as u64) * 2 + u64::from(o.frequency_mhz > frequency_mhz)
            })
            .map(|o| o.frequency_mhz)
            .expect("OPP tables are never empty")
    }
}

/// Builds an OPP table from `min..=max` MHz in `step` MHz increments with a voltage curve that
/// rises slightly super-linearly from `v_min` to `v_max`, approximating published Exynos 5422
/// DVFS tables. A degenerate `min == max` range yields a single OPP at `v_min`, and a zero
/// `step_mhz` is treated as 1 (rather than looping forever). Public so custom platform
/// definitions (and tests) can synthesize their own tables.
pub fn build_opps(
    min_mhz: u32,
    max_mhz: u32,
    step_mhz: u32,
    v_min: f64,
    v_max: f64,
) -> Vec<OperatingPoint> {
    let step_mhz = step_mhz.max(1);
    let mut opps = Vec::new();
    let mut f = min_mhz;
    while f <= max_mhz {
        // Degenerate single-OPP tables (min == max) would otherwise divide by zero and
        // produce a NaN voltage.
        let t = if max_mhz > min_mhz {
            (f - min_mhz) as f64 / (max_mhz - min_mhz) as f64
        } else {
            0.0
        };
        // Quadratic blend: voltage rises faster near the top of the frequency range.
        let voltage = v_min + (v_max - v_min) * (0.45 * t + 0.55 * t * t);
        opps.push(OperatingPoint {
            frequency_mhz: f,
            voltage_v: voltage,
        });
        f += step_mhz;
    }
    opps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exynos_big_cluster_matches_paper_decision_space() {
        let big = ClusterParams::exynos5422_big();
        assert_eq!(big.core_count, 4);
        assert_eq!(big.frequency_levels(), 19);
        assert_eq!(big.min_frequency_mhz(), 200);
        assert_eq!(big.max_frequency_mhz(), 2000);
    }

    #[test]
    fn exynos_little_cluster_matches_paper_decision_space() {
        let little = ClusterParams::exynos5422_little();
        assert_eq!(little.core_count, 4);
        assert_eq!(little.frequency_levels(), 13);
        assert_eq!(little.min_frequency_mhz(), 200);
        assert_eq!(little.max_frequency_mhz(), 1400);
    }

    #[test]
    fn voltage_increases_monotonically_with_frequency() {
        for params in [
            ClusterParams::exynos5422_big(),
            ClusterParams::exynos5422_little(),
        ] {
            for pair in params.opps.windows(2) {
                assert!(pair[1].frequency_mhz > pair[0].frequency_mhz);
                assert!(pair[1].voltage_v > pair[0].voltage_v);
            }
            assert!(params.opps.first().unwrap().voltage_v >= 0.89);
            assert!(params.opps.last().unwrap().voltage_v <= 1.37);
        }
    }

    #[test]
    fn big_cores_are_faster_but_hungrier() {
        let big = ClusterParams::exynos5422_big();
        let little = ClusterParams::exynos5422_little();
        assert!(big.peak_ipc > little.peak_ipc);
        assert!(big.capacitance_nf > little.capacitance_nf);
        assert!(big.leakage_w_per_v2 > little.leakage_w_per_v2);
        // In-order Little pays a larger relative stall overhead.
        assert!(little.miss_stall_overhead_cycles > big.miss_stall_overhead_cycles);
    }

    #[test]
    fn opp_lookup_and_levels() {
        let big = ClusterParams::exynos5422_big();
        assert!(big.opp_for(1000).is_some());
        assert!(big.opp_for(1050).is_none());
        assert_eq!(big.level_of(200), Some(0));
        assert_eq!(big.level_of(2000), Some(18));
        assert_eq!(big.level_of(2100), None);
        assert_eq!(big.opp_at_level(0).frequency_mhz, 200);
        assert_eq!(big.opp_at_level(999).frequency_mhz, 2000);
    }

    #[test]
    fn nearest_frequency_clamps_and_rounds() {
        let little = ClusterParams::exynos5422_little();
        assert_eq!(little.nearest_frequency(0), 200);
        assert_eq!(little.nearest_frequency(1375), 1400);
        assert_eq!(little.nearest_frequency(1449), 1400);
        assert_eq!(little.nearest_frequency(5000), 1400);
        assert_eq!(little.nearest_frequency(250), 200); // ties resolve downward
        assert_eq!(little.nearest_frequency(260), 300);
    }

    #[test]
    fn build_opps_handles_degenerate_ranges_and_steps() {
        // min == max: one OPP, finite voltage (regression: used to divide by zero).
        let single = build_opps(1000, 1000, 100, 0.9, 1.1);
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].frequency_mhz, 1000);
        assert!(single[0].voltage_v.is_finite());
        assert_eq!(single[0].voltage_v, 0.9);
        // step == 0: clamped to 1 instead of looping forever.
        let stepped = build_opps(100, 103, 0, 0.8, 0.9);
        assert_eq!(stepped.len(), 4);
        assert_eq!(stepped.last().unwrap().frequency_mhz, 103);
    }

    #[test]
    fn cluster_kind_display_and_all() {
        assert_eq!(ClusterKind::Big.to_string(), "big");
        assert_eq!(ClusterKind::Little.to_string(), "little");
        assert_eq!(ClusterKind::ALL.len(), 2);
    }
}
