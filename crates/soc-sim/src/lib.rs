//! Analytic big.LITTLE heterogeneous SoC simulator.
//!
//! The PaRMIS paper evaluates on a physical Odroid-XU3 board (Samsung Exynos 5422: four A15
//! "Big" cores, four A7 "Little" cores, per-cluster DVFS, on-board power sensors) running 12
//! MiBench/CortexSuite benchmarks. That hardware is not available to this reproduction, so
//! this crate provides the closest synthetic equivalent: an analytic platform model that
//! exposes exactly the observables the DRM-policy learning problem needs —
//!
//! * a **decision space** of (active Big cores, active Little cores, Big frequency, Little
//!   frequency) tuples identical in size and structure to the paper's 4 940 configurations
//!   ([`config`]),
//! * a **performance model** capturing frequency scaling, memory-boundedness and parallel
//!   scaling across heterogeneous clusters ([`perf`]),
//! * a **power/energy model** with per-cluster dynamic (`C·V²·f`) and static components and
//!   realistic Exynos-5422-like voltage/frequency operating points ([`power`], [`cluster`]),
//! * the **hardware-counter features** of Table I regenerated every decision epoch
//!   ([`counters`]),
//! * twelve **synthetic applications** that mirror the phase behaviour of the paper's
//!   benchmarks ([`apps`], [`workload`]), plus deterministic **workload generators**
//!   (bursty, periodic, io-idle, multi-app interleave) for scenario diversity,
//! * the four stock **Linux governors** used as baselines ([`governor`]),
//! * a **platform runner** that executes an application under any [`DrmController`] and
//!   reports execution time, energy, PPW and peak temperature ([`platform`]), with a
//!   lumped-RC **thermal model** (optional per-cluster junction refinement, [`thermal`])
//!   and **DVFS transition costs** (latency + energy, [`TransitionModel`]), and
//! * a **scenario registry** of named (platform, workload, constraints) triples with
//!   lossless JSON round-tripping ([`scenario`]) — the regression axis of the cross-
//!   scenario golden matrix. Besides the Exynos-5422 preset there are asymmetric
//!   hexa-core and wearable-class platforms ([`SocSpec::hexa_asym`], [`SocSpec::wearable`]).
//!
//! # Quick start
//!
//! ```
//! use soc_sim::apps::Benchmark;
//! use soc_sim::governor::OndemandGovernor;
//! use soc_sim::platform::Platform;
//!
//! # fn main() -> Result<(), soc_sim::SocError> {
//! let platform = Platform::odroid_xu3();
//! let app = Benchmark::Qsort.application();
//! let mut governor = OndemandGovernor::new(platform.spec().clone());
//! let summary = platform.run_application(&app, &mut governor, 0)?;
//! assert!(summary.execution_time_s > 0.0);
//! assert!(summary.energy_j > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod cluster;
pub mod config;
pub mod counters;
pub mod engine;
mod error;
pub mod governor;
pub mod perf;
pub mod platform;
pub mod power;
pub mod scenario;
pub mod thermal;
pub mod trace;
pub mod workload;

pub use config::{DecisionSpace, DrmDecision};
pub use counters::CounterSnapshot;
pub use engine::{DecisionEntry, DecisionTable};
pub use error::SocError;
pub use fastmath::Precision;
pub use platform::{
    CancelEpochs, CollectEpochs, DiscardEpochs, DrmController, EpochResult, EpochSink, Platform,
    RunAggregates, RunSummary, SocSpec, TransitionModel,
};
pub use scenario::{BackendKind, Scenario};
pub use thermal::{PerClusterThermal, ThermalModel, ThermalState};
pub use trace::{RunTrace, TraceStore};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, SocError>;

// The parallel batched evaluation engine (`parmis::evaluation::ParallelEvaluator`) shares
// platforms and applications across scoped worker threads and clones them into sweep arms.
// Everything here is plain owned data — no interior mutability, no `Rc` — so these bounds
// hold structurally; the assertions turn an accidental regression (e.g. someone caching
// state in a `RefCell`) into a compile error at the crate boundary.
#[cfg(test)]
mod thread_safety {
    use super::*;

    fn assert_worker_shareable<T: Send + Sync + Clone>() {}

    #[test]
    fn platform_types_can_cross_worker_threads() {
        assert_worker_shareable::<Platform>();
        assert_worker_shareable::<SocSpec>();
        assert_worker_shareable::<DecisionSpace>();
        assert_worker_shareable::<DrmDecision>();
        assert_worker_shareable::<workload::Application>();
        assert_worker_shareable::<workload::PhaseSpec>();
        assert_worker_shareable::<apps::Benchmark>();
        assert_worker_shareable::<CounterSnapshot>();
        assert_worker_shareable::<RunSummary>();
        assert_worker_shareable::<RunAggregates>();
        assert_worker_shareable::<DecisionTable>();
        assert_worker_shareable::<EpochResult>();
        assert_worker_shareable::<Scenario>();
        assert_worker_shareable::<BackendKind>();
        assert_worker_shareable::<RunTrace>();
        assert_worker_shareable::<TraceStore>();
        assert_worker_shareable::<counters::CounterSample>();
        assert_worker_shareable::<scenario::WorkloadSpec>();
        assert_worker_shareable::<scenario::ScenarioConstraints>();
        assert_worker_shareable::<ThermalModel>();
        assert_worker_shareable::<ThermalState>();
    }
}
