//! Analytic performance model: how long one decision epoch takes under a DRM decision.
//!
//! The model captures the three effects that drive the energy/performance trade-off the paper
//! exploits:
//!
//! 1. **Frequency scaling with memory-boundedness.** Each L2 miss stalls for a fixed DRAM
//!    latency in *nanoseconds*, so its cost in *cycles* grows with frequency; memory-bound
//!    phases therefore stop benefiting from higher clocks while still paying the `V²f` power
//!    premium.
//! 2. **Heterogeneous cores.** Big cores have higher peak IPC and better miss tolerance but
//!    burn far more power; Little cores are slower but efficient.
//! 3. **Amdahl parallel scaling.** Only the parallel fraction of an epoch uses multiple
//!    cores, with a synchronization penalty that grows with the core count.

use crate::cluster::{ClusterKind, ClusterParams};
use crate::config::DrmDecision;
use crate::workload::PhaseSpec;
use serde::{Deserialize, Serialize};

/// Tunable constants of the performance model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    /// Average DRAM access latency in nanoseconds (LPDDR3 on the Odroid-XU3 ≈ 90 ns).
    pub dram_latency_ns: f64,
    /// Relative synchronization overhead added per extra active core in the parallel section.
    pub parallel_sync_overhead: f64,
    /// Fraction of L2 misses that also miss in the row buffer and pay an extra half latency.
    pub row_miss_fraction: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        PerfModel {
            dram_latency_ns: 90.0,
            parallel_sync_overhead: 0.03,
            row_miss_fraction: 0.3,
        }
    }
}

/// Timing outcome of one epoch under one decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochPerf {
    /// Wall-clock duration of the epoch in seconds.
    pub time_s: f64,
    /// Instructions retired on the Big cluster.
    pub big_instructions: f64,
    /// Instructions retired on the Little cluster.
    pub little_instructions: f64,
    /// Busy core-seconds accumulated on the Big cluster.
    pub big_busy_core_s: f64,
    /// Busy core-seconds accumulated on the Little cluster.
    pub little_busy_core_s: f64,
    /// Average per-active-core utilization of the Big cluster in `[0, 1]`.
    pub big_utilization: f64,
    /// Average per-active-core utilization of the Little cluster in `[0, 1]`.
    pub little_utilization: f64,
}

/// Phase-rate-invariant throughput state of one `(decision, phase)` pair — everything in
/// the epoch model that does **not** depend on the phase's instruction count or parallel
/// fraction. Produced by [`PerfModel::epoch_throughput`]; consumed (and memoized across
/// repeating epochs) by the streaming application runner via [`PerfModel::run_epoch_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochThroughput {
    /// Throughput of the single core that runs the serial section, in instructions/s.
    serial_tp: f64,
    /// Which cluster hosts the serial section.
    serial_cluster: ClusterKind,
    /// Synchronized aggregate throughput of all active cores, in instructions/s.
    aggregate_tp: f64,
    /// Fraction of parallel-section instructions retired on the Big cluster.
    par_big_share: f64,
}

impl PerfModel {
    /// Effective cycles-per-instruction of one core of `cluster` running `phase` at the OPP
    /// frequency `freq_mhz`.
    pub fn cycles_per_instruction(
        &self,
        cluster: &ClusterParams,
        phase: &PhaseSpec,
        freq_mhz: u32,
    ) -> f64 {
        let base_cpi = 1.0 / (cluster.peak_ipc * phase.ilp_scale);
        let branch_cpi =
            phase.branch_fraction * phase.branch_miss_rate * cluster.branch_miss_penalty_cycles;
        let f_ghz = freq_mhz as f64 / 1000.0;
        let dram_cycles = self.dram_latency_ns * (1.0 + 0.5 * self.row_miss_fraction) * f_ghz;
        let miss_cpi = phase.memory_refs_per_instr
            * phase.l2_miss_rate
            * (dram_cycles + cluster.miss_stall_overhead_cycles);
        base_cpi + branch_cpi + miss_cpi
    }

    /// Sustained throughput (instructions per second) of a single core.
    pub fn core_throughput(
        &self,
        cluster: &ClusterParams,
        phase: &PhaseSpec,
        freq_mhz: u32,
    ) -> f64 {
        let cpi = self.cycles_per_instruction(cluster, phase, freq_mhz);
        freq_mhz as f64 * 1e6 / cpi
    }

    /// Derives the phase-rate-invariant throughput state of one `(decision, phase)` pair:
    /// per-cluster core throughputs, the serial-section core, the synchronized aggregate
    /// throughput and the Big cluster's parallel-work share.
    ///
    /// None of these depend on the phase's **instruction count** (or its parallel
    /// fraction), so the streaming application runner memoizes the result across
    /// consecutive epochs that repeat the same decision and phase rates — the common case
    /// for every workload generator, which jitters only the instruction counts. The values
    /// are the exact f64s the seed computed inline, so memoized epochs stay bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if the decision activates no cores at all (the decision space guarantees at
    /// least one Little core, so this indicates an internal error).
    pub fn epoch_throughput(
        &self,
        big: &ClusterParams,
        little: &ClusterParams,
        decision: &DrmDecision,
        phase: &PhaseSpec,
    ) -> EpochThroughput {
        let n_big = decision.big_cores as f64;
        let n_little = decision.little_cores as f64;
        let total_cores = n_big + n_little;
        assert!(
            total_cores > 0.0,
            "a DRM decision must keep at least one core active"
        );

        let tp_big = if decision.big_cores > 0 {
            self.core_throughput(big, phase, decision.big_freq_mhz)
        } else {
            0.0
        };
        let tp_little = if decision.little_cores > 0 {
            self.core_throughput(little, phase, decision.little_freq_mhz)
        } else {
            0.0
        };

        // Serial section: fastest single active core.
        let (serial_tp, serial_cluster) = if tp_big >= tp_little && decision.big_cores > 0 {
            (tp_big, ClusterKind::Big)
        } else {
            (tp_little, ClusterKind::Little)
        };

        // Parallel section: all active cores, with a sync-efficiency discount.
        let sync_efficiency = 1.0 / (1.0 + self.parallel_sync_overhead * (total_cores - 1.0));
        let aggregate_tp = (n_big * tp_big + n_little * tp_little) * sync_efficiency;
        let par_big_share = if aggregate_tp > 0.0 {
            (n_big * tp_big * sync_efficiency) / aggregate_tp
        } else {
            0.0
        };

        EpochThroughput {
            serial_tp,
            serial_cluster,
            aggregate_tp,
            par_big_share,
        }
    }

    /// Simulates one epoch of `phase` under `decision`, returning its timing breakdown.
    ///
    /// The serial fraction of the epoch runs on the single fastest active core; the parallel
    /// fraction is spread over every active core weighted by per-core throughput, discounted
    /// by a synchronization efficiency factor.
    ///
    /// # Panics
    ///
    /// Panics if the decision activates no cores at all (the decision space guarantees at
    /// least one Little core, so this indicates an internal error).
    pub fn run_epoch(
        &self,
        big: &ClusterParams,
        little: &ClusterParams,
        decision: &DrmDecision,
        phase: &PhaseSpec,
    ) -> EpochPerf {
        let throughput = self.epoch_throughput(big, little, decision, phase);
        PerfModel::run_epoch_with(&throughput, decision, phase)
    }

    /// [`run_epoch`](Self::run_epoch) from a precomputed (possibly memoized)
    /// [`EpochThroughput`]: only the phase-dependent math (instruction scaling, times,
    /// attribution, utilizations) runs here. Bit-identical to `run_epoch` when `throughput`
    /// was derived from the same `(decision, phase)` rates.
    pub fn run_epoch_with(
        throughput: &EpochThroughput,
        decision: &DrmDecision,
        phase: &PhaseSpec,
    ) -> EpochPerf {
        let n_big = decision.big_cores as f64;
        let n_little = decision.little_cores as f64;
        let serial_instr = phase.instructions * (1.0 - phase.parallel_fraction);
        let parallel_instr = phase.instructions * phase.parallel_fraction;
        let serial_time = if serial_instr > 0.0 {
            serial_instr / throughput.serial_tp
        } else {
            0.0
        };
        let parallel_time = if parallel_instr > 0.0 {
            parallel_instr / throughput.aggregate_tp
        } else {
            0.0
        };

        let time_s = serial_time + parallel_time;

        // Attribute instructions and busy time to the clusters.
        let serial_cluster = throughput.serial_cluster;
        let par_big_share = throughput.par_big_share;
        let mut big_instructions = parallel_instr * par_big_share;
        let mut little_instructions = parallel_instr * (1.0 - par_big_share);
        let mut big_busy_core_s = parallel_time * n_big;
        let mut little_busy_core_s = parallel_time * n_little;
        match serial_cluster {
            ClusterKind::Big => {
                big_instructions += serial_instr;
                big_busy_core_s += serial_time;
            }
            ClusterKind::Little => {
                little_instructions += serial_instr;
                little_busy_core_s += serial_time;
            }
        }

        let big_utilization = if decision.big_cores > 0 && time_s > 0.0 {
            (big_busy_core_s / (n_big * time_s)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let little_utilization = if decision.little_cores > 0 && time_s > 0.0 {
            (little_busy_core_s / (n_little * time_s)).clamp(0.0, 1.0)
        } else {
            0.0
        };

        EpochPerf {
            time_s,
            big_instructions,
            little_instructions,
            big_busy_core_s,
            little_busy_core_s,
            big_utilization,
            little_utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterParams;

    fn compute_phase() -> PhaseSpec {
        PhaseSpec {
            name: "compute".into(),
            instructions: 100e6,
            parallel_fraction: 0.6,
            memory_refs_per_instr: 0.15,
            l2_miss_rate: 0.005,
            branch_fraction: 0.1,
            branch_miss_rate: 0.03,
            ilp_scale: 0.9,
        }
    }

    fn memory_phase() -> PhaseSpec {
        PhaseSpec {
            name: "memory".into(),
            instructions: 100e6,
            parallel_fraction: 0.6,
            memory_refs_per_instr: 0.35,
            l2_miss_rate: 0.12,
            branch_fraction: 0.08,
            branch_miss_rate: 0.02,
            ilp_scale: 0.7,
        }
    }

    fn decision(big: u8, little: u8, bf: u32, lf: u32) -> DrmDecision {
        DrmDecision {
            big_cores: big,
            little_cores: little,
            big_freq_mhz: bf,
            little_freq_mhz: lf,
        }
    }

    fn clusters() -> (ClusterParams, ClusterParams) {
        (
            ClusterParams::exynos5422_big(),
            ClusterParams::exynos5422_little(),
        )
    }

    #[test]
    fn higher_frequency_is_never_slower() {
        let (big, little) = clusters();
        let model = PerfModel::default();
        for phase in [compute_phase(), memory_phase()] {
            let slow = model.run_epoch(&big, &little, &decision(4, 4, 800, 800), &phase);
            let fast = model.run_epoch(&big, &little, &decision(4, 4, 2000, 1400), &phase);
            assert!(fast.time_s < slow.time_s);
        }
    }

    #[test]
    fn compute_phase_scales_better_with_frequency_than_memory_phase() {
        let (big, little) = clusters();
        let model = PerfModel::default();
        let ratio = |phase: &PhaseSpec| {
            let lo = model.run_epoch(&big, &little, &decision(4, 1, 600, 200), phase);
            let hi = model.run_epoch(&big, &little, &decision(4, 1, 2000, 200), phase);
            lo.time_s / hi.time_s
        };
        let compute_speedup = ratio(&compute_phase());
        let memory_speedup = ratio(&memory_phase());
        assert!(
            compute_speedup > memory_speedup,
            "compute speedup {compute_speedup} should exceed memory speedup {memory_speedup}"
        );
        // Memory-bound code saturates well below the 3.3x frequency ratio.
        assert!(memory_speedup < 2.6);
    }

    #[test]
    fn big_core_outruns_little_core() {
        let (big, little) = clusters();
        let model = PerfModel::default();
        let phase = compute_phase();
        let tp_big = model.core_throughput(&big, &phase, 1000);
        let tp_little = model.core_throughput(&little, &phase, 1000);
        assert!(tp_big > 1.4 * tp_little);
    }

    #[test]
    fn more_cores_help_parallel_phases() {
        let (big, little) = clusters();
        let model = PerfModel::default();
        let mut phase = compute_phase();
        phase.parallel_fraction = 0.9;
        let one = model.run_epoch(&big, &little, &decision(1, 1, 1400, 1000), &phase);
        let four = model.run_epoch(&big, &little, &decision(4, 4, 1400, 1000), &phase);
        assert!(four.time_s < one.time_s * 0.55);
    }

    #[test]
    fn serial_phases_do_not_benefit_from_extra_cores() {
        let (big, little) = clusters();
        let model = PerfModel::default();
        let mut phase = compute_phase();
        phase.parallel_fraction = 0.0;
        let one = model.run_epoch(&big, &little, &decision(1, 1, 1400, 1000), &phase);
        let four = model.run_epoch(&big, &little, &decision(4, 4, 1400, 1000), &phase);
        assert!((four.time_s - one.time_s).abs() / one.time_s < 1e-9);
    }

    #[test]
    fn instruction_attribution_is_conservative() {
        let (big, little) = clusters();
        let model = PerfModel::default();
        for d in [
            decision(0, 1, 200, 600),
            decision(2, 3, 1200, 1000),
            decision(4, 4, 2000, 1400),
        ] {
            let phase = memory_phase();
            let perf = model.run_epoch(&big, &little, &d, &phase);
            let total = perf.big_instructions + perf.little_instructions;
            assert!(
                (total - phase.instructions).abs() / phase.instructions < 1e-9,
                "instructions must be conserved"
            );
            if d.big_cores == 0 {
                assert_eq!(perf.big_instructions, 0.0);
                assert_eq!(perf.big_utilization, 0.0);
            }
        }
    }

    #[test]
    fn utilization_is_bounded_and_positive_when_active() {
        let (big, little) = clusters();
        let model = PerfModel::default();
        let perf = model.run_epoch(&big, &little, &decision(2, 2, 1000, 800), &compute_phase());
        assert!(perf.big_utilization > 0.0 && perf.big_utilization <= 1.0);
        assert!(perf.little_utilization > 0.0 && perf.little_utilization <= 1.0);
        // Busy core-seconds never exceed active cores x wall time.
        assert!(perf.big_busy_core_s <= 2.0 * perf.time_s + 1e-12);
        assert!(perf.little_busy_core_s <= 2.0 * perf.time_s + 1e-12);
    }

    #[test]
    fn little_only_configuration_runs_everything_on_little() {
        let (big, little) = clusters();
        let model = PerfModel::default();
        let perf = model.run_epoch(&big, &little, &decision(0, 4, 200, 1400), &compute_phase());
        assert_eq!(perf.big_instructions, 0.0);
        assert!(perf.little_instructions > 0.0);
        assert!(perf.time_s > 0.0);
    }

    #[test]
    fn epoch_durations_are_in_a_plausible_range() {
        // At the paper's scale an epoch is tens of milliseconds at high performance and up to
        // around a second at the lowest-power configuration.
        let (big, little) = clusters();
        let model = PerfModel::default();
        let fast = model.run_epoch(&big, &little, &decision(4, 4, 2000, 1400), &compute_phase());
        let slow = model.run_epoch(&big, &little, &decision(0, 1, 200, 200), &compute_phase());
        assert!(
            fast.time_s > 0.005 && fast.time_s < 0.1,
            "fast epoch {}",
            fast.time_s
        );
        assert!(
            slow.time_s > 0.2 && slow.time_s < 3.0,
            "slow epoch {}",
            slow.time_s
        );
    }

    #[test]
    fn cpi_increases_with_frequency_for_memory_bound_code() {
        let (big, _) = clusters();
        let model = PerfModel::default();
        let phase = memory_phase();
        let cpi_low = model.cycles_per_instruction(&big, &phase, 400);
        let cpi_high = model.cycles_per_instruction(&big, &phase, 2000);
        assert!(cpi_high > cpi_low);
    }
}
