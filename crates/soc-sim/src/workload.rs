//! Workload description: phases, decision epochs and applications.
//!
//! Following DyPO and the paper's experimental setup (§V-A "Decision interval"), an
//! application is modelled as a sequence of *decision epochs*. Each epoch is a cluster of
//! macro-blocks with stable characteristics; the DRM policy observes the hardware counters of
//! the finished epoch and picks the configuration for the next one. Since the real
//! MiBench/CortexSuite profiling traces are not available, each benchmark is described by a
//! small set of [`PhaseSpec`]s (compute-bound, memory-bound, …) that are expanded into a
//! repeatable epoch sequence with deterministic jitter.

use crate::{Result, SocError};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Workload characteristics of one program phase, expressed per dynamic instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Short human-readable phase name (e.g. `"sort-partition"`).
    pub name: String,
    /// Dynamic instructions executed in one epoch of this phase.
    pub instructions: f64,
    /// Fraction of the work that can run on multiple cores (Amdahl parallel fraction).
    pub parallel_fraction: f64,
    /// Data-memory accesses per instruction.
    pub memory_refs_per_instr: f64,
    /// L2 cache misses per data-memory access.
    pub l2_miss_rate: f64,
    /// Branches per instruction.
    pub branch_fraction: f64,
    /// Mispredictions per branch.
    pub branch_miss_rate: f64,
    /// Instruction-level-parallelism scale in (0, 1]: multiplies the cluster's peak IPC.
    pub ilp_scale: f64,
}

impl PhaseSpec {
    /// Validates that every characteristic lies in its physical range.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] naming the first out-of-range field.
    pub fn validate(&self) -> Result<()> {
        let checks: [(&'static str, f64, f64, f64); 7] = [
            ("instructions", self.instructions, 1.0, 1e12),
            ("parallel_fraction", self.parallel_fraction, 0.0, 1.0),
            (
                "memory_refs_per_instr",
                self.memory_refs_per_instr,
                0.0,
                1.0,
            ),
            ("l2_miss_rate", self.l2_miss_rate, 0.0, 1.0),
            ("branch_fraction", self.branch_fraction, 0.0, 1.0),
            ("branch_miss_rate", self.branch_miss_rate, 0.0, 1.0),
            ("ilp_scale", self.ilp_scale, 0.05, 1.0),
        ];
        for (name, value, lo, hi) in checks {
            if !(value.is_finite() && value >= lo && value <= hi) {
                return Err(SocError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }

    /// Returns a copy of the phase with its instruction count scaled by `factor` (used to add
    /// deterministic epoch-to-epoch jitter).
    pub fn scaled(&self, factor: f64) -> PhaseSpec {
        PhaseSpec {
            instructions: (self.instructions * factor).max(1.0),
            ..self.clone()
        }
    }
}

/// A fully expanded application: an ordered sequence of per-epoch phase specifications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Benchmark name (e.g. `"qsort"`), shared so every [`crate::platform::RunSummary`]
    /// produced from this application reuses the same allocation (a refcount bump per run
    /// instead of a fresh `String`).
    pub name: Arc<str>,
    /// One [`PhaseSpec`] per decision epoch, in execution order.
    pub epochs: Vec<PhaseSpec>,
}

impl Application {
    /// Creates an application after validating every epoch.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::EmptyApplication`] for an empty epoch list and propagates
    /// [`PhaseSpec::validate`] failures.
    pub fn new(name: impl Into<Arc<str>>, epochs: Vec<PhaseSpec>) -> Result<Self> {
        let name = name.into();
        if epochs.is_empty() {
            return Err(SocError::EmptyApplication {
                name: name.to_string(),
            });
        }
        for e in &epochs {
            e.validate()?;
        }
        Ok(Application { name, epochs })
    }

    /// Number of decision epochs.
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// Total dynamic instructions across all epochs.
    pub fn total_instructions(&self) -> f64 {
        self.epochs.iter().map(|e| e.instructions).sum()
    }
}

/// Builder that expands a set of phases into a deterministic epoch sequence.
///
/// The builder interleaves the phases in round-robin order, repeating the cycle `cycles`
/// times, and applies a deterministic ±`jitter` modulation to the instruction counts so that
/// consecutive epochs of the same phase are similar but not identical — mimicking the
/// epoch-to-epoch variability of the real traces.
///
/// # Examples
///
/// ```
/// use soc_sim::workload::{ApplicationBuilder, PhaseSpec};
///
/// # fn main() -> Result<(), soc_sim::SocError> {
/// let phase = PhaseSpec {
///     name: "compute".into(),
///     instructions: 50e6,
///     parallel_fraction: 0.5,
///     memory_refs_per_instr: 0.2,
///     l2_miss_rate: 0.02,
///     branch_fraction: 0.1,
///     branch_miss_rate: 0.05,
///     ilp_scale: 0.9,
/// };
/// let app = ApplicationBuilder::new("demo")
///     .phase(phase, 3)
///     .cycles(4)
///     .jitter(0.1)
///     .build()?;
/// assert_eq!(app.epoch_count(), 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ApplicationBuilder {
    name: String,
    phases: Vec<(PhaseSpec, usize)>,
    cycles: usize,
    jitter: f64,
    seed: u64,
}

impl ApplicationBuilder {
    /// Starts a builder for an application called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ApplicationBuilder {
            name: name.into(),
            phases: Vec::new(),
            cycles: 1,
            jitter: 0.0,
            seed: 0x9e3779b97f4a7c15,
        }
    }

    /// Adds a phase that contributes `epochs_per_cycle` consecutive epochs to every cycle.
    pub fn phase(mut self, spec: PhaseSpec, epochs_per_cycle: usize) -> Self {
        self.phases.push((spec, epochs_per_cycle));
        self
    }

    /// Sets how many times the phase cycle repeats (default 1).
    pub fn cycles(mut self, cycles: usize) -> Self {
        self.cycles = cycles.max(1);
        self
    }

    /// Sets the relative instruction-count jitter in `[0, 0.5]` (default 0).
    pub fn jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 0.5);
        self
    }

    /// Sets the deterministic jitter seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Expands the phases into a concrete [`Application`].
    ///
    /// # Errors
    ///
    /// Returns [`SocError::EmptyApplication`] if no phases were added (or all have zero
    /// epochs per cycle) and propagates phase validation failures.
    pub fn build(self) -> Result<Application> {
        let mut epochs = Vec::new();
        let mut hash = self.seed;
        for cycle in 0..self.cycles {
            for (spec, count) in &self.phases {
                for rep in 0..*count {
                    // SplitMix64-style deterministic pseudo-noise in [-1, 1].
                    hash = hash
                        .wrapping_add(0x9e3779b97f4a7c15)
                        .wrapping_mul(0xbf58476d1ce4e5b9)
                        ^ (cycle as u64 + 1).wrapping_mul(rep as u64 + 13);
                    let unit = (hash >> 11) as f64 / (1u64 << 53) as f64;
                    let noise = (unit * 2.0 - 1.0) * self.jitter;
                    epochs.push(spec.scaled(1.0 + noise));
                }
            }
        }
        Application::new(self.name, epochs)
    }
}

// ---------------------------------------------------------------------------------------------
// Scenario workload generators.
//
// The paper's benchmarks are steady phase cycles; real device workloads are not. These
// generators synthesize the other shapes the scenario registry needs — bursty interactive
// load, periodic sensor duty cycles, io-wait-dominated idling and multi-app interleaves —
// all with deterministic seeded jitter so every scenario is exactly reproducible.
// ---------------------------------------------------------------------------------------------

/// One SplitMix64 draw in `[0, 1)`; the deterministic noise source of the generators.
fn unit_noise(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
}

/// Signed jitter factor `1 ± jitter` drawn from `state`.
fn jitter_factor(state: &mut u64, jitter: f64) -> f64 {
    1.0 + (unit_noise(state) * 2.0 - 1.0) * jitter.clamp(0.0, 0.5)
}

/// Bursty workload: long quiet stretches of `base` punctuated every `period` epochs by
/// `burst_len` epochs carrying `burst_scale`× the instructions (an interactive app servicing
/// input events). Deterministic for a given `seed`.
///
/// # Errors
///
/// Propagates [`Application::new`] validation failures (e.g. `epochs == 0`).
#[allow(clippy::too_many_arguments)] // mirrors the other generators' flat parameter style
pub fn bursty(
    name: impl Into<Arc<str>>,
    base: PhaseSpec,
    burst_scale: f64,
    period: usize,
    burst_len: usize,
    epochs: usize,
    jitter: f64,
    seed: u64,
) -> Result<Application> {
    let period = period.max(1);
    let burst_len = burst_len.min(period);
    let mut state = seed ^ 0xb529_7a4d_3f84_d5b5;
    let mut specs = Vec::with_capacity(epochs);
    for i in 0..epochs {
        let in_burst = (i % period) < burst_len;
        let scale = if in_burst { burst_scale.max(0.05) } else { 1.0 };
        let mut spec = base.scaled(scale * jitter_factor(&mut state, jitter));
        spec.name = format!("{}-{}", base.name, if in_burst { "burst" } else { "quiet" });
        specs.push(spec);
    }
    Application::new(name, specs)
}

/// Periodic workload: the instruction count of `base` is modulated by
/// `1 + depth · sin(2π · i / period)` — a sensor-fusion or media pipeline with a fixed duty
/// cycle — plus deterministic seeded jitter.
///
/// # Errors
///
/// Propagates [`Application::new`] validation failures (e.g. `epochs == 0`).
pub fn periodic(
    name: impl Into<Arc<str>>,
    base: PhaseSpec,
    period: usize,
    depth: f64,
    epochs: usize,
    jitter: f64,
    seed: u64,
) -> Result<Application> {
    let period = period.max(2);
    let depth = depth.clamp(0.0, 0.95);
    let mut state = seed ^ 0x94d0_49bb_1331_11eb;
    let mut specs = Vec::with_capacity(epochs);
    for i in 0..epochs {
        let angle = 2.0 * std::f64::consts::PI * (i % period) as f64 / period as f64;
        let scale = 1.0 + depth * angle.sin();
        let mut spec = base.scaled(scale * jitter_factor(&mut state, jitter));
        spec.name = format!("{}-phase{}", base.name, i % period);
        specs.push(spec);
    }
    Application::new(name, specs)
}

/// Io-idle workload: each epoch is either an `active` epoch or an io-wait epoch (tiny
/// serial instruction count standing in for a core blocked on storage/radio), with the idle
/// epochs placed by a seeded coin weighted by `idle_fraction`.
///
/// # Errors
///
/// Propagates [`Application::new`] validation failures (e.g. `epochs == 0`).
pub fn io_idle(
    name: impl Into<Arc<str>>,
    active: PhaseSpec,
    idle_fraction: f64,
    epochs: usize,
    jitter: f64,
    seed: u64,
) -> Result<Application> {
    let idle_fraction = idle_fraction.clamp(0.0, 1.0);
    let idle = PhaseSpec {
        name: format!("{}-iowait", active.name),
        instructions: (active.instructions * 0.02).max(1.0),
        parallel_fraction: 0.0,
        memory_refs_per_instr: 0.05,
        l2_miss_rate: 0.01,
        branch_fraction: 0.05,
        branch_miss_rate: 0.02,
        ilp_scale: 0.3,
    };
    let mut state = seed ^ 0xd1b5_4a32_d192_ed03;
    let mut specs = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let is_idle = unit_noise(&mut state) < idle_fraction;
        let source = if is_idle { &idle } else { &active };
        let spec = source.scaled(jitter_factor(&mut state, jitter));
        specs.push(spec);
    }
    Application::new(name, specs)
}

/// Multi-app interleave: merges the epochs of several applications into one timeline,
/// preserving each application's internal epoch order and drawing the next contributor with
/// probability proportional to its remaining epochs (a seeded fair scheduler). Phase names
/// are prefixed with the contributing application so traces stay attributable.
///
/// # Errors
///
/// Returns [`SocError::EmptyApplication`] when `apps` is empty (or all empty).
pub fn interleave(
    name: impl Into<Arc<str>>,
    apps: &[Application],
    seed: u64,
) -> Result<Application> {
    let mut cursors = vec![0usize; apps.len()];
    let total: usize = apps.iter().map(Application::epoch_count).sum();
    let mut state = seed ^ 0xbf58_476d_1ce4_e5b9;
    let mut specs = Vec::with_capacity(total);
    while specs.len() < total {
        let remaining_total = total - specs.len();
        let mut draw = (unit_noise(&mut state) * remaining_total as f64) as usize;
        draw = draw.min(remaining_total - 1);
        let mut chosen = 0;
        for (idx, app) in apps.iter().enumerate() {
            let remaining = app.epoch_count() - cursors[idx];
            if draw < remaining {
                chosen = idx;
                break;
            }
            draw -= remaining;
        }
        let mut spec = apps[chosen].epochs[cursors[chosen]].clone();
        spec.name = format!("{}:{}", apps[chosen].name, spec.name);
        cursors[chosen] += 1;
        specs.push(spec);
    }
    Application::new(name, specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(name: &str, instructions: f64) -> PhaseSpec {
        PhaseSpec {
            name: name.into(),
            instructions,
            parallel_fraction: 0.4,
            memory_refs_per_instr: 0.25,
            l2_miss_rate: 0.03,
            branch_fraction: 0.12,
            branch_miss_rate: 0.04,
            ilp_scale: 0.8,
        }
    }

    #[test]
    fn phase_validation_catches_out_of_range_values() {
        assert!(phase("ok", 1e6).validate().is_ok());
        let mut p = phase("bad", 1e6);
        p.parallel_fraction = 1.4;
        assert!(p.validate().is_err());
        let mut p = phase("bad", 0.0);
        p.instructions = 0.0;
        assert!(p.validate().is_err());
        let mut p = phase("bad", 1e6);
        p.ilp_scale = 0.0;
        assert!(p.validate().is_err());
        let mut p = phase("bad", 1e6);
        p.l2_miss_rate = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn application_requires_epochs() {
        assert!(matches!(
            Application::new("empty", vec![]),
            Err(SocError::EmptyApplication { .. })
        ));
        let app = Application::new("one", vec![phase("a", 2e6)]).unwrap();
        assert_eq!(app.epoch_count(), 1);
        assert_eq!(app.total_instructions(), 2e6);
    }

    #[test]
    fn builder_expands_cycles_and_phases_in_order() {
        let app = ApplicationBuilder::new("two-phase")
            .phase(phase("a", 10e6), 2)
            .phase(phase("b", 20e6), 1)
            .cycles(3)
            .build()
            .unwrap();
        assert_eq!(app.epoch_count(), 9);
        // Pattern per cycle: a, a, b.
        assert_eq!(app.epochs[0].name, "a");
        assert_eq!(app.epochs[1].name, "a");
        assert_eq!(app.epochs[2].name, "b");
        assert_eq!(app.epochs[3].name, "a");
    }

    #[test]
    fn builder_jitter_is_deterministic_and_bounded() {
        let build = || {
            ApplicationBuilder::new("jittered")
                .phase(phase("a", 100e6), 4)
                .cycles(5)
                .jitter(0.2)
                .seed(77)
                .build()
                .unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same seed must give the same application");
        for e in &a.epochs {
            assert!(e.instructions >= 80e6 - 1.0 && e.instructions <= 120e6 + 1.0);
        }
        // Jitter actually perturbs the counts.
        assert!(a
            .epochs
            .iter()
            .any(|e| (e.instructions - 100e6).abs() > 1e3));

        let c = ApplicationBuilder::new("jittered")
            .phase(phase("a", 100e6), 4)
            .cycles(5)
            .jitter(0.2)
            .seed(78)
            .build()
            .unwrap();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn builder_without_phases_fails() {
        assert!(ApplicationBuilder::new("empty").cycles(3).build().is_err());
    }

    #[test]
    fn bursty_alternates_quiet_and_burst_epochs_deterministically() {
        let build = || bursty("web", phase("ui", 20e6), 6.0, 8, 2, 40, 0.1, 9).unwrap();
        let app = build();
        assert_eq!(app, build(), "same seed must reproduce the workload");
        assert_eq!(app.epoch_count(), 40);
        let bursts: Vec<&PhaseSpec> = app
            .epochs
            .iter()
            .filter(|e| e.name.ends_with("burst"))
            .collect();
        assert_eq!(bursts.len(), 10, "2 of every 8 epochs are bursts");
        let quiet_mean = app
            .epochs
            .iter()
            .filter(|e| e.name.ends_with("quiet"))
            .map(|e| e.instructions)
            .sum::<f64>()
            / 30.0;
        let burst_mean = bursts.iter().map(|e| e.instructions).sum::<f64>() / 10.0;
        assert!(
            burst_mean > 4.0 * quiet_mean,
            "bursts ({burst_mean}) must dwarf quiet epochs ({quiet_mean})"
        );
        assert_ne!(
            app,
            bursty("web", phase("ui", 20e6), 6.0, 8, 2, 40, 0.1, 10).unwrap()
        );
    }

    #[test]
    fn periodic_modulation_cycles_with_the_requested_period() {
        let app = periodic("sensor", phase("fuse", 30e6), 10, 0.8, 30, 0.0, 3).unwrap();
        assert_eq!(app.epoch_count(), 30);
        // With zero jitter the pattern repeats exactly every period.
        for i in 0..10 {
            assert_eq!(app.epochs[i].instructions, app.epochs[i + 10].instructions);
        }
        let max = app
            .epochs
            .iter()
            .map(|e| e.instructions)
            .fold(0.0, f64::max);
        let min = app
            .epochs
            .iter()
            .map(|e| e.instructions)
            .fold(f64::INFINITY, f64::min);
        assert!(max > 2.0 * min, "depth 0.8 should swing the load heavily");
    }

    #[test]
    fn io_idle_mixes_idle_epochs_at_roughly_the_requested_rate() {
        let app = io_idle("sync", phase("copy", 50e6), 0.5, 200, 0.05, 11).unwrap();
        let idle = app
            .epochs
            .iter()
            .filter(|e| e.name.contains("iowait"))
            .count();
        assert!(
            (60..=140).contains(&idle),
            "idle fraction 0.5 should yield roughly half idle epochs, got {idle}/200"
        );
        assert_eq!(
            app,
            io_idle("sync", phase("copy", 50e6), 0.5, 200, 0.05, 11).unwrap()
        );
        // Idle epochs are serial and tiny.
        let idle_epoch = app
            .epochs
            .iter()
            .find(|e| e.name.contains("iowait"))
            .unwrap();
        assert_eq!(idle_epoch.parallel_fraction, 0.0);
        assert!(idle_epoch.instructions < 5e6);
    }

    #[test]
    fn interleave_preserves_per_app_epoch_order_and_total_work() {
        let a = Application::new(
            "a",
            vec![phase("a0", 1e6), phase("a1", 2e6), phase("a2", 3e6)],
        )
        .unwrap();
        let b = Application::new("b", vec![phase("b0", 4e6), phase("b1", 5e6)]).unwrap();
        let merged = interleave("mix", &[a.clone(), b.clone()], 5).unwrap();
        assert_eq!(merged.epoch_count(), 5);
        assert_eq!(
            merged.total_instructions(),
            a.total_instructions() + b.total_instructions()
        );
        // Per-app subsequences stay in order.
        let order_of = |prefix: &str| {
            merged
                .epochs
                .iter()
                .filter(|e| e.name.starts_with(prefix))
                .map(|e| e.name.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(order_of("a:"), vec!["a:a0", "a:a1", "a:a2"]);
        assert_eq!(order_of("b:"), vec!["b:b0", "b:b1"]);
        assert_eq!(merged, interleave("mix", &[a, b], 5).unwrap());
        assert!(interleave("empty", &[], 5).is_err());
    }

    #[test]
    fn scaled_preserves_other_fields() {
        let p = phase("a", 100.0);
        let s = p.scaled(0.5);
        assert_eq!(s.instructions, 50.0);
        assert_eq!(s.parallel_fraction, p.parallel_fraction);
        assert_eq!(s.name, p.name);
        // Scaling never produces non-positive instruction counts.
        assert_eq!(p.scaled(0.0).instructions, 1.0);
    }
}
