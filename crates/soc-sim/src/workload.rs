//! Workload description: phases, decision epochs and applications.
//!
//! Following DyPO and the paper's experimental setup (§V-A "Decision interval"), an
//! application is modelled as a sequence of *decision epochs*. Each epoch is a cluster of
//! macro-blocks with stable characteristics; the DRM policy observes the hardware counters of
//! the finished epoch and picks the configuration for the next one. Since the real
//! MiBench/CortexSuite profiling traces are not available, each benchmark is described by a
//! small set of [`PhaseSpec`]s (compute-bound, memory-bound, …) that are expanded into a
//! repeatable epoch sequence with deterministic jitter.

use crate::{Result, SocError};
use serde::{Deserialize, Serialize};

/// Workload characteristics of one program phase, expressed per dynamic instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Short human-readable phase name (e.g. `"sort-partition"`).
    pub name: String,
    /// Dynamic instructions executed in one epoch of this phase.
    pub instructions: f64,
    /// Fraction of the work that can run on multiple cores (Amdahl parallel fraction).
    pub parallel_fraction: f64,
    /// Data-memory accesses per instruction.
    pub memory_refs_per_instr: f64,
    /// L2 cache misses per data-memory access.
    pub l2_miss_rate: f64,
    /// Branches per instruction.
    pub branch_fraction: f64,
    /// Mispredictions per branch.
    pub branch_miss_rate: f64,
    /// Instruction-level-parallelism scale in (0, 1]: multiplies the cluster's peak IPC.
    pub ilp_scale: f64,
}

impl PhaseSpec {
    /// Validates that every characteristic lies in its physical range.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] naming the first out-of-range field.
    pub fn validate(&self) -> Result<()> {
        let checks: [(&'static str, f64, f64, f64); 7] = [
            ("instructions", self.instructions, 1.0, 1e12),
            ("parallel_fraction", self.parallel_fraction, 0.0, 1.0),
            (
                "memory_refs_per_instr",
                self.memory_refs_per_instr,
                0.0,
                1.0,
            ),
            ("l2_miss_rate", self.l2_miss_rate, 0.0, 1.0),
            ("branch_fraction", self.branch_fraction, 0.0, 1.0),
            ("branch_miss_rate", self.branch_miss_rate, 0.0, 1.0),
            ("ilp_scale", self.ilp_scale, 0.05, 1.0),
        ];
        for (name, value, lo, hi) in checks {
            if !(value.is_finite() && value >= lo && value <= hi) {
                return Err(SocError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }

    /// Returns a copy of the phase with its instruction count scaled by `factor` (used to add
    /// deterministic epoch-to-epoch jitter).
    pub fn scaled(&self, factor: f64) -> PhaseSpec {
        PhaseSpec {
            instructions: (self.instructions * factor).max(1.0),
            ..self.clone()
        }
    }
}

/// A fully expanded application: an ordered sequence of per-epoch phase specifications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Benchmark name (e.g. `"qsort"`).
    pub name: String,
    /// One [`PhaseSpec`] per decision epoch, in execution order.
    pub epochs: Vec<PhaseSpec>,
}

impl Application {
    /// Creates an application after validating every epoch.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::EmptyApplication`] for an empty epoch list and propagates
    /// [`PhaseSpec::validate`] failures.
    pub fn new(name: impl Into<String>, epochs: Vec<PhaseSpec>) -> Result<Self> {
        let name = name.into();
        if epochs.is_empty() {
            return Err(SocError::EmptyApplication { name });
        }
        for e in &epochs {
            e.validate()?;
        }
        Ok(Application { name, epochs })
    }

    /// Number of decision epochs.
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// Total dynamic instructions across all epochs.
    pub fn total_instructions(&self) -> f64 {
        self.epochs.iter().map(|e| e.instructions).sum()
    }
}

/// Builder that expands a set of phases into a deterministic epoch sequence.
///
/// The builder interleaves the phases in round-robin order, repeating the cycle `cycles`
/// times, and applies a deterministic ±`jitter` modulation to the instruction counts so that
/// consecutive epochs of the same phase are similar but not identical — mimicking the
/// epoch-to-epoch variability of the real traces.
///
/// # Examples
///
/// ```
/// use soc_sim::workload::{ApplicationBuilder, PhaseSpec};
///
/// # fn main() -> Result<(), soc_sim::SocError> {
/// let phase = PhaseSpec {
///     name: "compute".into(),
///     instructions: 50e6,
///     parallel_fraction: 0.5,
///     memory_refs_per_instr: 0.2,
///     l2_miss_rate: 0.02,
///     branch_fraction: 0.1,
///     branch_miss_rate: 0.05,
///     ilp_scale: 0.9,
/// };
/// let app = ApplicationBuilder::new("demo")
///     .phase(phase, 3)
///     .cycles(4)
///     .jitter(0.1)
///     .build()?;
/// assert_eq!(app.epoch_count(), 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ApplicationBuilder {
    name: String,
    phases: Vec<(PhaseSpec, usize)>,
    cycles: usize,
    jitter: f64,
    seed: u64,
}

impl ApplicationBuilder {
    /// Starts a builder for an application called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ApplicationBuilder {
            name: name.into(),
            phases: Vec::new(),
            cycles: 1,
            jitter: 0.0,
            seed: 0x9e3779b97f4a7c15,
        }
    }

    /// Adds a phase that contributes `epochs_per_cycle` consecutive epochs to every cycle.
    pub fn phase(mut self, spec: PhaseSpec, epochs_per_cycle: usize) -> Self {
        self.phases.push((spec, epochs_per_cycle));
        self
    }

    /// Sets how many times the phase cycle repeats (default 1).
    pub fn cycles(mut self, cycles: usize) -> Self {
        self.cycles = cycles.max(1);
        self
    }

    /// Sets the relative instruction-count jitter in `[0, 0.5]` (default 0).
    pub fn jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 0.5);
        self
    }

    /// Sets the deterministic jitter seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Expands the phases into a concrete [`Application`].
    ///
    /// # Errors
    ///
    /// Returns [`SocError::EmptyApplication`] if no phases were added (or all have zero
    /// epochs per cycle) and propagates phase validation failures.
    pub fn build(self) -> Result<Application> {
        let mut epochs = Vec::new();
        let mut hash = self.seed;
        for cycle in 0..self.cycles {
            for (spec, count) in &self.phases {
                for rep in 0..*count {
                    // SplitMix64-style deterministic pseudo-noise in [-1, 1].
                    hash = hash
                        .wrapping_add(0x9e3779b97f4a7c15)
                        .wrapping_mul(0xbf58476d1ce4e5b9)
                        ^ (cycle as u64 + 1).wrapping_mul(rep as u64 + 13);
                    let unit = (hash >> 11) as f64 / (1u64 << 53) as f64;
                    let noise = (unit * 2.0 - 1.0) * self.jitter;
                    epochs.push(spec.scaled(1.0 + noise));
                }
            }
        }
        Application::new(self.name, epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(name: &str, instructions: f64) -> PhaseSpec {
        PhaseSpec {
            name: name.into(),
            instructions,
            parallel_fraction: 0.4,
            memory_refs_per_instr: 0.25,
            l2_miss_rate: 0.03,
            branch_fraction: 0.12,
            branch_miss_rate: 0.04,
            ilp_scale: 0.8,
        }
    }

    #[test]
    fn phase_validation_catches_out_of_range_values() {
        assert!(phase("ok", 1e6).validate().is_ok());
        let mut p = phase("bad", 1e6);
        p.parallel_fraction = 1.4;
        assert!(p.validate().is_err());
        let mut p = phase("bad", 0.0);
        p.instructions = 0.0;
        assert!(p.validate().is_err());
        let mut p = phase("bad", 1e6);
        p.ilp_scale = 0.0;
        assert!(p.validate().is_err());
        let mut p = phase("bad", 1e6);
        p.l2_miss_rate = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn application_requires_epochs() {
        assert!(matches!(
            Application::new("empty", vec![]),
            Err(SocError::EmptyApplication { .. })
        ));
        let app = Application::new("one", vec![phase("a", 2e6)]).unwrap();
        assert_eq!(app.epoch_count(), 1);
        assert_eq!(app.total_instructions(), 2e6);
    }

    #[test]
    fn builder_expands_cycles_and_phases_in_order() {
        let app = ApplicationBuilder::new("two-phase")
            .phase(phase("a", 10e6), 2)
            .phase(phase("b", 20e6), 1)
            .cycles(3)
            .build()
            .unwrap();
        assert_eq!(app.epoch_count(), 9);
        // Pattern per cycle: a, a, b.
        assert_eq!(app.epochs[0].name, "a");
        assert_eq!(app.epochs[1].name, "a");
        assert_eq!(app.epochs[2].name, "b");
        assert_eq!(app.epochs[3].name, "a");
    }

    #[test]
    fn builder_jitter_is_deterministic_and_bounded() {
        let build = || {
            ApplicationBuilder::new("jittered")
                .phase(phase("a", 100e6), 4)
                .cycles(5)
                .jitter(0.2)
                .seed(77)
                .build()
                .unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same seed must give the same application");
        for e in &a.epochs {
            assert!(e.instructions >= 80e6 - 1.0 && e.instructions <= 120e6 + 1.0);
        }
        // Jitter actually perturbs the counts.
        assert!(a
            .epochs
            .iter()
            .any(|e| (e.instructions - 100e6).abs() > 1e3));

        let c = ApplicationBuilder::new("jittered")
            .phase(phase("a", 100e6), 4)
            .cycles(5)
            .jitter(0.2)
            .seed(78)
            .build()
            .unwrap();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn builder_without_phases_fails() {
        assert!(ApplicationBuilder::new("empty").cycles(3).build().is_err());
    }

    #[test]
    fn scaled_preserves_other_fields() {
        let p = phase("a", 100.0);
        let s = p.scaled(0.5);
        assert_eq!(s.instructions, 50.0);
        assert_eq!(s.parallel_fraction, p.parallel_fraction);
        assert_eq!(s.name, p.name);
        // Scaling never produces non-positive instruction counts.
        assert_eq!(p.scaled(0.0).instructions, 1.0);
    }
}
