//! The 12 benchmark applications used in the paper's evaluation.
//!
//! The paper runs MiBench (Basicmath, Dijkstra, FFT, Qsort, SHA, Blowfish, StringSearch) and
//! CortexSuite (AES, Kmeans, Spectral, MotionEst, PCA) programs with "large" inputs. Since
//! neither the binaries nor the profiling traces are available here, each benchmark is
//! described by a small number of phases whose characteristics (parallel fraction, memory
//! intensity, cache behaviour, branchiness, ILP) follow each program's published
//! characterization: crypto kernels are compute-bound and serial-ish, Dijkstra is
//! pointer-chasing and memory-latency bound, Kmeans/PCA/Spectral are data-parallel with heavy
//! memory traffic, and so on. What matters for reproducing the paper is that the benchmarks
//! span distinct regions of the (compute ↔ memory, serial ↔ parallel) plane, so that the best
//! DRM configuration differs per application and per phase.

use crate::workload::{Application, ApplicationBuilder, PhaseSpec};

/// Identifier for one of the 12 evaluated benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// MiBench basicmath: scalar math kernels, compute-bound, mostly serial.
    Basicmath,
    /// MiBench dijkstra: shortest paths over an adjacency matrix, latency-bound.
    Dijkstra,
    /// MiBench FFT: radix-2 FFT, mixed compute/memory, moderately parallel.
    Fft,
    /// MiBench qsort: branchy comparison sort with irregular accesses.
    Qsort,
    /// MiBench SHA: secure hash, integer compute-bound, serial.
    Sha,
    /// MiBench blowfish: block cipher, compute-bound with table lookups.
    Blowfish,
    /// MiBench stringsearch: Boyer-Moore search, branchy streaming reads.
    StringSearch,
    /// CortexSuite-style AES encryption of a large buffer.
    Aes,
    /// CortexSuite k-means clustering: data-parallel, memory-heavy.
    Kmeans,
    /// CortexSuite spectral clustering: dense linear algebra, parallel.
    Spectral,
    /// Motion estimation (video): block matching, high ILP, data-parallel.
    MotionEst,
    /// Principal component analysis: large matrix products, memory-bound, parallel.
    Pca,
}

impl Benchmark {
    /// All 12 benchmarks in the order the paper's figures list them.
    pub const ALL: [Benchmark; 12] = [
        Benchmark::Basicmath,
        Benchmark::Dijkstra,
        Benchmark::Fft,
        Benchmark::Qsort,
        Benchmark::Sha,
        Benchmark::Blowfish,
        Benchmark::StringSearch,
        Benchmark::Aes,
        Benchmark::Kmeans,
        Benchmark::Spectral,
        Benchmark::MotionEst,
        Benchmark::Pca,
    ];

    /// Lower-case benchmark name as used in reports and figures.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Basicmath => "basicmath",
            Benchmark::Dijkstra => "dijkstra",
            Benchmark::Fft => "fft",
            Benchmark::Qsort => "qsort",
            Benchmark::Sha => "sha",
            Benchmark::Blowfish => "blowfish",
            Benchmark::StringSearch => "stringsearch",
            Benchmark::Aes => "aes",
            Benchmark::Kmeans => "kmeans",
            Benchmark::Spectral => "spectral",
            Benchmark::MotionEst => "motionest",
            Benchmark::Pca => "pca",
        }
    }

    /// Looks a benchmark up by its [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// Builds the synthetic [`Application`] for this benchmark.
    pub fn application(&self) -> Application {
        let app = match self {
            Benchmark::Basicmath => basicmath(),
            Benchmark::Dijkstra => dijkstra(),
            Benchmark::Fft => fft(),
            Benchmark::Qsort => qsort(),
            Benchmark::Sha => sha(),
            Benchmark::Blowfish => blowfish(),
            Benchmark::StringSearch => stringsearch(),
            Benchmark::Aes => aes(),
            Benchmark::Kmeans => kmeans(),
            Benchmark::Spectral => spectral(),
            Benchmark::MotionEst => motionest(),
            Benchmark::Pca => pca(),
        };
        app.expect("built-in benchmark definitions are valid")
    }

    /// Convenience: the applications of all 12 benchmarks.
    pub fn all_applications() -> Vec<Application> {
        Benchmark::ALL.iter().map(|b| b.application()).collect()
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Helper to build a phase with less repetition.
#[allow(clippy::too_many_arguments)]
fn phase(
    name: &str,
    instructions_m: f64,
    parallel: f64,
    mem_refs: f64,
    l2_miss: f64,
    branches: f64,
    branch_miss: f64,
    ilp: f64,
) -> PhaseSpec {
    PhaseSpec {
        name: name.into(),
        instructions: instructions_m * 1e6,
        parallel_fraction: parallel,
        memory_refs_per_instr: mem_refs,
        l2_miss_rate: l2_miss,
        branch_fraction: branches,
        branch_miss_rate: branch_miss,
        ilp_scale: ilp,
    }
}

fn basicmath() -> crate::Result<Application> {
    ApplicationBuilder::new("basicmath")
        .phase(
            phase("cubic-solver", 90.0, 0.15, 0.12, 0.004, 0.10, 0.02, 0.95),
            3,
        )
        .phase(
            phase("rad2deg", 70.0, 0.30, 0.18, 0.008, 0.08, 0.02, 0.90),
            2,
        )
        .phase(phase("isqrt", 60.0, 0.10, 0.10, 0.003, 0.14, 0.04, 0.85), 2)
        .cycles(8)
        .jitter(0.08)
        .seed(101)
        .build()
}

fn dijkstra() -> crate::Result<Application> {
    ApplicationBuilder::new("dijkstra")
        .phase(
            phase("graph-load", 50.0, 0.10, 0.40, 0.06, 0.10, 0.05, 0.60),
            1,
        )
        .phase(
            phase("relaxation", 80.0, 0.20, 0.38, 0.07, 0.16, 0.09, 0.55),
            5,
        )
        .phase(
            phase("queue-update", 45.0, 0.10, 0.30, 0.05, 0.20, 0.11, 0.60),
            2,
        )
        .cycles(7)
        .jitter(0.10)
        .seed(102)
        .build()
}

fn fft() -> crate::Result<Application> {
    ApplicationBuilder::new("fft")
        .phase(
            phase("bit-reverse", 40.0, 0.50, 0.30, 0.06, 0.08, 0.03, 0.75),
            1,
        )
        .phase(
            phase("butterfly", 110.0, 0.70, 0.24, 0.05, 0.06, 0.02, 0.90),
            4,
        )
        .phase(
            phase("twiddle", 60.0, 0.60, 0.16, 0.02, 0.07, 0.02, 0.92),
            2,
        )
        .cycles(8)
        .jitter(0.07)
        .seed(103)
        .build()
}

fn qsort() -> crate::Result<Application> {
    ApplicationBuilder::new("qsort")
        .phase(
            phase("partition", 85.0, 0.45, 0.30, 0.05, 0.22, 0.12, 0.70),
            4,
        )
        .phase(
            phase("insertion-tail", 40.0, 0.15, 0.24, 0.03, 0.25, 0.10, 0.72),
            2,
        )
        .phase(
            phase("copy-back", 35.0, 0.60, 0.42, 0.08, 0.05, 0.02, 0.65),
            1,
        )
        .cycles(8)
        .jitter(0.10)
        .seed(104)
        .build()
}

fn sha() -> crate::Result<Application> {
    ApplicationBuilder::new("sha")
        .phase(
            phase(
                "message-schedule",
                70.0,
                0.10,
                0.14,
                0.010,
                0.05,
                0.01,
                0.95,
            ),
            2,
        )
        .phase(
            phase("compression", 120.0, 0.08, 0.08, 0.004, 0.04, 0.01, 1.00),
            5,
        )
        .cycles(8)
        .jitter(0.05)
        .seed(105)
        .build()
}

fn blowfish() -> crate::Result<Application> {
    ApplicationBuilder::new("blowfish")
        .phase(
            phase("key-schedule", 55.0, 0.05, 0.18, 0.015, 0.06, 0.02, 0.90),
            1,
        )
        .phase(
            phase("feistel-rounds", 100.0, 0.35, 0.20, 0.012, 0.05, 0.01, 0.95),
            5,
        )
        .cycles(9)
        .jitter(0.06)
        .seed(106)
        .build()
}

fn stringsearch() -> crate::Result<Application> {
    ApplicationBuilder::new("stringsearch")
        .phase(
            phase("preprocess", 30.0, 0.10, 0.22, 0.02, 0.18, 0.08, 0.80),
            1,
        )
        .phase(phase("scan", 75.0, 0.40, 0.34, 0.06, 0.24, 0.10, 0.70), 5)
        .cycles(9)
        .jitter(0.09)
        .seed(107)
        .build()
}

fn aes() -> crate::Result<Application> {
    ApplicationBuilder::new("aes")
        .phase(
            phase("key-expansion", 40.0, 0.05, 0.16, 0.010, 0.06, 0.02, 0.92),
            1,
        )
        .phase(
            phase("encrypt-blocks", 120.0, 0.55, 0.22, 0.020, 0.04, 0.01, 0.95),
            5,
        )
        .phase(
            phase(
                "output-whitening",
                45.0,
                0.45,
                0.28,
                0.030,
                0.05,
                0.02,
                0.88,
            ),
            1,
        )
        .cycles(8)
        .jitter(0.06)
        .seed(108)
        .build()
}

fn kmeans() -> crate::Result<Application> {
    ApplicationBuilder::new("kmeans")
        .phase(
            phase("assign", 130.0, 0.85, 0.36, 0.09, 0.08, 0.03, 0.80),
            4,
        )
        .phase(
            phase("update-centroids", 60.0, 0.70, 0.30, 0.07, 0.06, 0.02, 0.78),
            2,
        )
        .phase(
            phase(
                "convergence-check",
                25.0,
                0.20,
                0.20,
                0.03,
                0.12,
                0.04,
                0.85,
            ),
            1,
        )
        .cycles(8)
        .jitter(0.08)
        .seed(109)
        .build()
}

fn spectral() -> crate::Result<Application> {
    ApplicationBuilder::new("spectral")
        .phase(
            phase("affinity-matrix", 110.0, 0.80, 0.32, 0.08, 0.05, 0.02, 0.82),
            3,
        )
        .phase(
            phase("eigen-iteration", 130.0, 0.75, 0.26, 0.06, 0.06, 0.02, 0.88),
            4,
        )
        .phase(
            phase("cluster-assign", 50.0, 0.60, 0.30, 0.05, 0.10, 0.04, 0.80),
            1,
        )
        .cycles(7)
        .jitter(0.07)
        .seed(110)
        .build()
}

fn motionest() -> crate::Result<Application> {
    ApplicationBuilder::new("motionest")
        .phase(
            phase("block-match", 140.0, 0.90, 0.28, 0.04, 0.07, 0.02, 0.92),
            5,
        )
        .phase(
            phase("vector-refine", 60.0, 0.65, 0.22, 0.03, 0.10, 0.04, 0.88),
            2,
        )
        .cycles(8)
        .jitter(0.08)
        .seed(111)
        .build()
}

fn pca() -> crate::Result<Application> {
    ApplicationBuilder::new("pca")
        .phase(
            phase("covariance", 150.0, 0.85, 0.40, 0.12, 0.04, 0.01, 0.75),
            4,
        )
        .phase(
            phase("eigen-decomp", 90.0, 0.55, 0.30, 0.08, 0.08, 0.03, 0.80),
            3,
        )
        .phase(
            phase("projection", 70.0, 0.80, 0.38, 0.10, 0.04, 0.01, 0.78),
            2,
        )
        .cycles(6)
        .jitter(0.09)
        .seed(112)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DrmDecision;
    use crate::counters::CounterSnapshot;
    use crate::platform::{DrmController, Platform};

    struct Fixed(DrmDecision);
    impl DrmController for Fixed {
        fn decide(&mut self, _: &CounterSnapshot, _: &DrmDecision) -> DrmDecision {
            self.0
        }
    }

    #[test]
    fn twelve_benchmarks_with_unique_names() {
        assert_eq!(Benchmark::ALL.len(), 12);
        let names: std::collections::HashSet<&str> =
            Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 12);
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(Benchmark::from_name("does-not-exist"), None);
    }

    #[test]
    fn all_applications_build_and_are_nontrivial() {
        for app in Benchmark::all_applications() {
            assert!(app.epoch_count() >= 20, "{} too short", app.name);
            assert!(app.epoch_count() <= 120, "{} too long", app.name);
            assert!(
                app.total_instructions() > 1e9,
                "{} too little work",
                app.name
            );
        }
    }

    #[test]
    fn benchmarks_span_distinct_workload_characteristics() {
        let mean = |app: &crate::workload::Application, f: fn(&PhaseSpec) -> f64| {
            app.epochs.iter().map(f).sum::<f64>() / app.epoch_count() as f64
        };
        let dijkstra = Benchmark::Dijkstra.application();
        let sha = Benchmark::Sha.application();
        let kmeans = Benchmark::Kmeans.application();

        // Dijkstra is far more memory-bound than SHA.
        let mem = |p: &PhaseSpec| p.memory_refs_per_instr * p.l2_miss_rate;
        assert!(mean(&dijkstra, mem) > 5.0 * mean(&sha, mem));
        // Kmeans is far more parallel than SHA.
        let par = |p: &PhaseSpec| p.parallel_fraction;
        assert!(mean(&kmeans, par) > 2.0 * mean(&sha, par));
    }

    #[test]
    fn execution_times_fall_in_the_papers_range() {
        // The paper reports per-application execution times of roughly 1-20 s depending on
        // configuration; check the two extreme configurations bracket a plausible range.
        let platform = Platform::odroid_xu3();
        let space = platform.spec().decision_space().clone();
        for b in [Benchmark::Qsort, Benchmark::Pca, Benchmark::Dijkstra] {
            let app = b.application();
            let fast = platform
                .run_application(&app, &mut Fixed(space.performance_decision()), 0)
                .unwrap();
            let slow = platform
                .run_application(&app, &mut Fixed(space.powersave_decision()), 0)
                .unwrap();
            assert!(
                fast.execution_time_s > 0.3 && fast.execution_time_s < 20.0,
                "{}: fast run {} s out of range",
                b,
                fast.execution_time_s
            );
            assert!(
                slow.execution_time_s > fast.execution_time_s,
                "{}: powersave must be slower",
                b
            );
            assert!(
                slow.execution_time_s < 150.0,
                "{}: slow run {} s unreasonably long",
                b,
                slow.execution_time_s
            );
        }
    }

    #[test]
    fn different_benchmarks_prefer_different_configurations() {
        // A memory-bound benchmark (dijkstra) should gain much less from the performance
        // configuration relative to a mid-frequency one than a compute-bound benchmark (sha).
        let platform = Platform::odroid_xu3();
        let mid = DrmDecision {
            big_cores: 4,
            little_cores: 1,
            big_freq_mhz: 1000,
            little_freq_mhz: 200,
        };
        let max = DrmDecision {
            big_cores: 4,
            little_cores: 1,
            big_freq_mhz: 2000,
            little_freq_mhz: 200,
        };
        let speedup = |b: Benchmark| {
            let app = b.application();
            let t_mid = platform
                .run_application(&app, &mut Fixed(mid), 0)
                .unwrap()
                .execution_time_s;
            let t_max = platform
                .run_application(&app, &mut Fixed(max), 0)
                .unwrap()
                .execution_time_s;
            t_mid / t_max
        };
        let sha_speedup = speedup(Benchmark::Sha);
        let dijkstra_speedup = speedup(Benchmark::Dijkstra);
        assert!(
            sha_speedup > dijkstra_speedup + 0.1,
            "sha speedup {sha_speedup} should clearly exceed dijkstra speedup {dijkstra_speedup}"
        );
    }
}
