//! Lumped-RC thermal model of the SoC package with an optional per-cluster refinement.
//!
//! # Package model
//!
//! The die is modelled as a single thermal capacitance coupled to ambient through a thermal
//! resistance `R` (first-order RC). A constant power draw `P` drives the package temperature
//! `T` towards the steady state
//!
//! ```text
//! T_ss = T_ambient + R · P
//! ```
//!
//! with the exact first-order step over an epoch of duration `Δt`:
//!
//! ```text
//! T' = T + (1 − e^(−Δt/τ)) · (T_ss − T)
//! ```
//!
//! Default constants (Exynos-5422-like): `T_ambient = 25 °C`, `R = 8 °C/W`, `τ = 2 s`.
//! Two effects feed back into a run: **leakage** grows by `leakage_per_degree` (default
//! 0.4 %/°C) above ambient, and the Big cluster is **throttled** to
//! `throttle_big_freq_mhz` (default 1200 MHz) while the package is above
//! `throttle_trip_c` (default 80 °C).
//!
//! # Per-cluster refinement ([`PerClusterThermal`])
//!
//! When [`ThermalModel::per_cluster`] is set, each cluster additionally tracks a local
//! junction temperature riding on top of the die temperature:
//!
//! ```text
//! T_cluster_ss = T_die + R_cluster · P_cluster
//! ```
//!
//! advanced with its own (faster) time constant. Throttling then trips on the *hottest*
//! junction, latches with a configurable hysteresis band, and can optionally cap the Little
//! cluster too. The refinement is **off by default** (`per_cluster: None`): with it
//! disabled, trajectories and throttling decisions are bit-identical to the original lumped
//! model, which keeps all pre-existing simulation results stable.

use crate::cluster::ClusterParams;
use crate::config::DrmDecision;
use serde::{Deserialize, Serialize};

/// First-order RC thermal model of the SoC package.
///
/// The Exynos 5422 is famously thermally limited: sustained operation of the A15 cluster at
/// its top frequencies heats the package past the throttling trip point within seconds.
/// The model tracks one lumped package temperature, driven by total chip power through a
/// thermal resistance and a first-order time constant (see the [module docs](self) for the
/// equations). Per-epoch profiling (as used by the imitation-learning Oracle and the
/// per-epoch RL reward) does not observe these cross-epoch effects — exactly as on the real
/// board.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Ambient temperature in °C.
    pub ambient_c: f64,
    /// Junction-to-ambient thermal resistance in °C per watt.
    pub resistance_c_per_w: f64,
    /// First-order thermal time constant in seconds.
    pub time_constant_s: f64,
    /// Fractional increase of total chip power per °C above ambient (leakage growth).
    pub leakage_per_degree: f64,
    /// Package temperature above which the Big cluster is throttled.
    pub throttle_trip_c: f64,
    /// Maximum Big-cluster frequency while throttled, in MHz.
    pub throttle_big_freq_mhz: u32,
    /// Optional per-cluster junction refinement. `None` (the default) reproduces the
    /// original lumped behaviour bit for bit.
    pub per_cluster: Option<PerClusterThermal>,
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel {
            ambient_c: 25.0,
            resistance_c_per_w: 8.0,
            time_constant_s: 2.0,
            leakage_per_degree: 0.004,
            throttle_trip_c: 80.0,
            throttle_big_freq_mhz: 1200,
            per_cluster: None,
        }
    }
}

/// Per-cluster refinement of the package model: cluster-local junction temperatures, hottest-
/// junction throttling with hysteresis, and an optional Little-cluster cap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerClusterThermal {
    /// Junction-to-die thermal resistance of the Big cluster in °C per watt.
    pub big_resistance_c_per_w: f64,
    /// Junction-to-die thermal resistance of the Little cluster in °C per watt.
    pub little_resistance_c_per_w: f64,
    /// Time constant of the cluster-local hotspots in seconds (much faster than the package).
    pub cluster_time_constant_s: f64,
    /// Hysteresis band in °C: once tripped, throttling persists until the hottest junction
    /// cools below `throttle_trip_c − hysteresis_c`.
    pub hysteresis_c: f64,
    /// Whether the Little cluster is also capped while throttling.
    pub throttle_little: bool,
    /// Maximum Little-cluster frequency while throttled, in MHz (only used when
    /// `throttle_little` is set).
    pub throttle_little_freq_mhz: u32,
}

impl Default for PerClusterThermal {
    fn default() -> Self {
        PerClusterThermal {
            big_resistance_c_per_w: 2.5,
            little_resistance_c_per_w: 1.0,
            cluster_time_constant_s: 0.35,
            hysteresis_c: 3.0,
            throttle_little: false,
            throttle_little_freq_mhz: 1000,
        }
    }
}

/// Instantaneous thermal state carried across decision epochs by the platform runner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalState {
    /// Lumped die (package) temperature in °C.
    pub die_c: f64,
    /// Big-cluster junction temperature in °C (equals `die_c` in lumped mode).
    pub big_c: f64,
    /// Little-cluster junction temperature in °C (equals `die_c` in lumped mode).
    pub little_c: f64,
    /// Latched throttle flag (only meaningful in per-cluster mode, where trips have
    /// hysteresis; lumped mode recomputes throttling from `die_c` every epoch).
    pub throttling: bool,
}

impl ThermalState {
    /// The hottest tracked junction in °C.
    pub fn hottest_c(&self) -> f64 {
        self.die_c.max(self.big_c).max(self.little_c)
    }
}

impl ThermalModel {
    /// Steady-state package temperature for a constant power draw.
    pub fn steady_state_c(&self, power_w: f64) -> f64 {
        self.ambient_c + self.resistance_c_per_w * power_w
    }

    /// Advances the package temperature by `dt_s` seconds at a constant power draw.
    pub fn step(&self, temperature_c: f64, power_w: f64, dt_s: f64) -> f64 {
        let target = self.steady_state_c(power_w);
        let alpha = 1.0 - (-dt_s / self.time_constant_s.max(1e-9)).exp();
        temperature_c + alpha * (target - temperature_c)
    }

    /// Multiplier applied to total chip power to account for temperature-dependent leakage.
    pub fn leakage_multiplier(&self, temperature_c: f64) -> f64 {
        1.0 + self.leakage_per_degree * (temperature_c - self.ambient_c).max(0.0)
    }

    /// Returns `true` if the Big cluster must be throttled at this package temperature
    /// (lumped-mode criterion).
    pub fn is_throttling(&self, temperature_c: f64) -> bool {
        temperature_c > self.throttle_trip_c
    }

    /// The state a cold platform starts from: everything at ambient, not throttling.
    pub fn initial_state(&self) -> ThermalState {
        ThermalState {
            die_c: self.ambient_c,
            big_c: self.ambient_c,
            little_c: self.ambient_c,
            throttling: false,
        }
    }

    /// Advances the thermal state across one epoch of duration `dt_s` during which the
    /// clusters drew `big_w`/`little_w` and the whole chip drew `total_w` watts.
    ///
    /// In lumped mode (`per_cluster: None`) this is exactly [`step`](Self::step) applied to
    /// the die temperature, with the cluster junctions mirroring the die. In per-cluster
    /// mode each junction relaxes towards `die + R_cluster · P_cluster` with the cluster
    /// time constant, and the latched throttle flag is updated with hysteresis on the
    /// hottest junction.
    pub fn advance(
        &self,
        state: &ThermalState,
        big_w: f64,
        little_w: f64,
        total_w: f64,
        dt_s: f64,
    ) -> ThermalState {
        let die_c = self.step(state.die_c, total_w, dt_s);
        match &self.per_cluster {
            None => ThermalState {
                die_c,
                big_c: die_c,
                little_c: die_c,
                throttling: self.is_throttling(die_c),
            },
            Some(pc) => {
                let alpha = 1.0 - (-dt_s / pc.cluster_time_constant_s.max(1e-9)).exp();
                let big_target = die_c + pc.big_resistance_c_per_w * big_w;
                let little_target = die_c + pc.little_resistance_c_per_w * little_w;
                let big_c = state.big_c + alpha * (big_target - state.big_c);
                let little_c = state.little_c + alpha * (little_target - state.little_c);
                let hottest = die_c.max(big_c).max(little_c);
                let throttling = if hottest > self.throttle_trip_c {
                    true
                } else if hottest < self.throttle_trip_c - pc.hysteresis_c.max(0.0) {
                    false
                } else {
                    state.throttling
                };
                ThermalState {
                    die_c,
                    big_c,
                    little_c,
                    throttling,
                }
            }
        }
    }

    /// Whether the next epoch must run throttled, given the state at the epoch boundary.
    pub fn throttles(&self, state: &ThermalState) -> bool {
        match &self.per_cluster {
            None => self.is_throttling(state.die_c),
            Some(_) => state.throttling,
        }
    }

    /// Applies the throttle caps to a requested decision (identity when not throttling).
    ///
    /// The Big cluster is clamped to the nearest supported frequency at or near
    /// `throttle_big_freq_mhz`; in per-cluster mode with `throttle_little` set, the Little
    /// cluster is clamped analogously.
    pub fn cap_decision(
        &self,
        throttling: bool,
        requested: &DrmDecision,
        big: &ClusterParams,
        little: &ClusterParams,
    ) -> DrmDecision {
        if !throttling {
            return *requested;
        }
        let mut decision = *requested;
        if decision.big_freq_mhz > self.throttle_big_freq_mhz {
            decision.big_freq_mhz = big.nearest_frequency(self.throttle_big_freq_mhz);
        }
        if let Some(pc) = &self.per_cluster {
            if pc.throttle_little && decision.little_freq_mhz > pc.throttle_little_freq_mhz {
                decision.little_freq_mhz = little.nearest_frequency(pc.throttle_little_freq_mhz);
            }
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_model_heats_towards_steady_state_and_throttles() {
        let thermal = ThermalModel::default();
        assert_eq!(thermal.steady_state_c(0.0), 25.0);
        assert!((thermal.steady_state_c(10.0) - 105.0).abs() < 1e-12);

        // Temperature rises monotonically towards (but never beyond) the steady state.
        let mut t = thermal.ambient_c;
        let mut previous = t;
        for _ in 0..50 {
            t = thermal.step(t, 10.0, 0.25);
            assert!(t >= previous);
            assert!(t <= thermal.steady_state_c(10.0) + 1e-9);
            previous = t;
        }
        assert!(t > 95.0, "sustained 10 W should approach 105 C, got {t}");
        assert!(thermal.is_throttling(t));
        assert!(!thermal.is_throttling(60.0));
        assert!(thermal.is_throttling(thermal.throttle_trip_c + 1.0));

        // Cooling works the same way in reverse.
        let cooled = thermal.step(t, 1.0, 5.0);
        assert!(cooled < t);

        // Leakage multiplier grows with temperature and is 1 at ambient.
        assert_eq!(thermal.leakage_multiplier(25.0), 1.0);
        assert!(thermal.leakage_multiplier(85.0) > 1.2);
        assert_eq!(thermal.leakage_multiplier(10.0), 1.0);
    }

    #[test]
    fn lumped_advance_matches_plain_step_exactly() {
        let thermal = ThermalModel::default();
        let mut state = thermal.initial_state();
        let mut reference = thermal.ambient_c;
        for i in 0..40 {
            let p = 3.0 + (i % 5) as f64;
            state = thermal.advance(&state, 0.7 * p, 0.1 * p, p, 0.2);
            reference = thermal.step(reference, p, 0.2);
            assert_eq!(
                state.die_c, reference,
                "lumped advance must be bit-identical"
            );
            assert_eq!(state.big_c, state.die_c);
            assert_eq!(state.little_c, state.die_c);
            assert_eq!(state.throttling, thermal.is_throttling(reference));
        }
    }

    #[test]
    fn per_cluster_junctions_ride_above_the_die_and_latch_with_hysteresis() {
        let thermal = ThermalModel {
            per_cluster: Some(PerClusterThermal {
                hysteresis_c: 5.0,
                ..PerClusterThermal::default()
            }),
            ..ThermalModel::default()
        };
        let mut state = thermal.initial_state();
        // Heat up with a Big-heavy power split: the Big junction must lead the die.
        for _ in 0..200 {
            state = thermal.advance(&state, 6.0, 0.3, 8.0, 0.25);
        }
        assert!(
            state.big_c > state.die_c + 5.0,
            "big junction should run hot"
        );
        assert!(state.little_c > state.die_c && state.little_c < state.big_c);
        assert!(state.throttling, "sustained 8 W must trip the throttle");
        assert!(thermal.throttles(&state));

        // Cool until just inside the hysteresis band: still latched.
        let mut cooling = state;
        while cooling.hottest_c() > thermal.throttle_trip_c - 1.0 {
            cooling = thermal.advance(&cooling, 0.1, 0.05, 0.3, 0.25);
        }
        assert!(
            cooling.throttling,
            "within the hysteresis band the latch must hold"
        );
        // Cool past the band: released.
        while cooling.hottest_c() > thermal.throttle_trip_c - 5.5 {
            cooling = thermal.advance(&cooling, 0.1, 0.05, 0.3, 0.25);
        }
        assert!(
            !cooling.throttling,
            "below trip - hysteresis the latch opens"
        );
    }

    #[test]
    fn cap_decision_clamps_only_what_throttling_demands() {
        let big = ClusterParams::exynos5422_big();
        let little = ClusterParams::exynos5422_little();
        let requested = DrmDecision {
            big_cores: 4,
            little_cores: 4,
            big_freq_mhz: 2000,
            little_freq_mhz: 1400,
        };
        let lumped = ThermalModel::default();
        assert_eq!(
            lumped.cap_decision(false, &requested, &big, &little),
            requested
        );
        let capped = lumped.cap_decision(true, &requested, &big, &little);
        assert_eq!(capped.big_freq_mhz, 1200);
        assert_eq!(
            capped.little_freq_mhz, 1400,
            "lumped mode never caps Little"
        );

        let both = ThermalModel {
            per_cluster: Some(PerClusterThermal {
                throttle_little: true,
                throttle_little_freq_mhz: 800,
                ..PerClusterThermal::default()
            }),
            ..ThermalModel::default()
        };
        let capped = both.cap_decision(true, &requested, &big, &little);
        assert_eq!(capped.big_freq_mhz, 1200);
        assert_eq!(capped.little_freq_mhz, 800);
        // Requests already below the caps pass through untouched.
        let modest = DrmDecision {
            big_freq_mhz: 1000,
            little_freq_mhz: 600,
            ..requested
        };
        assert_eq!(both.cap_decision(true, &modest, &big, &little), modest);
    }
}
