//! Hardware-counter features (Table I of the paper).
//!
//! The DRM policies observe the system state through nine features collected every decision
//! epoch: instructions retired, CPU cycles, branch mispredictions, L2 cache misses, data
//! memory accesses, non-cache external memory requests, the summed Little-cluster utilization,
//! the per-core Big-cluster utilization and total chip power. The platform synthesizes these
//! from the performance and power models so learned policies consume exactly the feature
//! vector the paper describes.

use crate::cluster::ClusterParams;
use crate::config::DrmDecision;
use crate::perf::EpochPerf;
use crate::platform::{EpochResult, EpochSink, RunAggregates};
use crate::power::PowerBreakdown;
use crate::workload::PhaseSpec;
use serde::{Deserialize, Serialize};

/// Number of counter features (the rows of Table I).
pub const FEATURE_COUNT: usize = 9;

/// Names of the features in the order produced by [`CounterSnapshot::to_features`].
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "instructions_retired",
    "cpu_cycles",
    "branch_mispredictions",
    "l2_cache_misses",
    "data_memory_accesses",
    "noncache_external_requests",
    "little_cluster_utilization_sum",
    "big_cluster_utilization_per_core",
    "total_chip_power_w",
];

/// Hardware-counter snapshot of one finished decision epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Dynamic instructions retired during the epoch.
    pub instructions_retired: f64,
    /// Total busy CPU cycles summed over all active cores.
    pub cpu_cycles: f64,
    /// Branch mispredictions during the epoch.
    pub branch_mispredictions: f64,
    /// L2 cache misses during the epoch.
    pub l2_cache_misses: f64,
    /// Data memory accesses during the epoch.
    pub data_memory_accesses: f64,
    /// Non-cacheable external memory requests during the epoch.
    pub noncache_external_requests: f64,
    /// Sum of per-core utilizations of the Little cluster (0–4 on the Exynos 5422).
    pub little_cluster_utilization_sum: f64,
    /// Average per-core utilization of the Big cluster in `[0, 1]`.
    pub big_cluster_utilization_per_core: f64,
    /// Average total chip power during the epoch in watts.
    pub total_chip_power_w: f64,
}

impl CounterSnapshot {
    /// A zeroed snapshot, used as the observation for the very first decision of a run
    /// (before any epoch has executed).
    pub fn zeroed() -> Self {
        CounterSnapshot {
            instructions_retired: 0.0,
            cpu_cycles: 0.0,
            branch_mispredictions: 0.0,
            l2_cache_misses: 0.0,
            data_memory_accesses: 0.0,
            noncache_external_requests: 0.0,
            little_cluster_utilization_sum: 0.0,
            big_cluster_utilization_per_core: 0.0,
            total_chip_power_w: 0.0,
        }
    }

    /// Synthesizes the counters of an epoch from the simulator's performance and power
    /// results.
    pub fn from_epoch(
        big: &ClusterParams,
        little: &ClusterParams,
        decision: &DrmDecision,
        phase: &PhaseSpec,
        perf: &EpochPerf,
        power: &PowerBreakdown,
    ) -> Self {
        let big_opp_mhz = if decision.big_cores > 0 {
            decision.big_freq_mhz as f64
        } else {
            0.0
        };
        let little_opp_mhz = decision.little_freq_mhz as f64;
        // Busy cycles = busy core-seconds x clock.
        let cpu_cycles = perf.big_busy_core_s * big_opp_mhz * 1e6
            + perf.little_busy_core_s * little_opp_mhz * 1e6;
        let data_memory_accesses = phase.instructions * phase.memory_refs_per_instr;
        let l2_cache_misses = data_memory_accesses * phase.l2_miss_rate;
        // A fixed share of misses bypasses the cache hierarchy entirely (device/uncached
        // traffic); keep the proportion small but non-zero so the feature carries signal.
        let noncache_external_requests = l2_cache_misses * 0.85 + data_memory_accesses * 0.002;
        let branch_mispredictions =
            phase.instructions * phase.branch_fraction * phase.branch_miss_rate;
        let _ = (big, little); // cluster parameters reserved for future counter refinements

        CounterSnapshot {
            instructions_retired: phase.instructions,
            cpu_cycles,
            branch_mispredictions,
            l2_cache_misses,
            data_memory_accesses,
            noncache_external_requests,
            little_cluster_utilization_sum: perf.little_utilization * decision.little_cores as f64,
            big_cluster_utilization_per_core: perf.big_utilization,
            total_chip_power_w: power.total_w(),
        }
    }

    /// Returns the features as a fixed-size array in [`FEATURE_NAMES`] order.
    pub fn to_features(&self) -> [f64; FEATURE_COUNT] {
        [
            self.instructions_retired,
            self.cpu_cycles,
            self.branch_mispredictions,
            self.l2_cache_misses,
            self.data_memory_accesses,
            self.noncache_external_requests,
            self.little_cluster_utilization_sum,
            self.big_cluster_utilization_per_core,
            self.total_chip_power_w,
        ]
    }

    /// Returns the features scaled to roughly unit magnitude, suitable as MLP inputs.
    ///
    /// Count-type features are log-compressed (`ln(1 + x)` divided by a per-feature scale
    /// estimated from typical epoch magnitudes); utilizations and power are linearly scaled.
    pub fn to_normalized_features(&self) -> [f64; FEATURE_COUNT] {
        let raw = self.to_features();
        let mut out = [0.0; FEATURE_COUNT];
        // Typical epoch magnitudes used as normalization constants (counts are per-epoch).
        const LOG_SCALE: [f64; 6] = [18.0, 19.0, 13.0, 12.0, 17.0, 12.0];
        for i in 0..6 {
            out[i] = (1.0 + raw[i]).ln() / LOG_SCALE[i];
        }
        out[6] = raw[6] / 4.0; // little utilization sum: 0..4
        out[7] = raw[7]; // big per-core utilization: already 0..1
        out[8] = raw[8] / 8.0; // total power: 0..~8 W
        out
    }
}

/// One profiled decision epoch as a perf-counter backend observes it: the Table I counter
/// vector plus the two measured side channels real profiling stacks expose alongside the
/// PMU (wall-clock time per sample window, and the junction temperature from the thermal
/// sensor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterSample {
    /// Wall-clock duration of the epoch in seconds.
    pub time_s: f64,
    /// Hottest junction temperature at the end of the epoch, in °C.
    pub temperature_c: f64,
    /// The hardware counters observed for the epoch.
    pub counters: CounterSnapshot,
}

/// Collector half of the counter-profile split: an [`EpochSink`] that retains only what a
/// perf-counter profiler would measure ([`CounterSample`]s), dropping the simulator-internal
/// energy/rail channels. The stats half ([`CounterStats`]) folds the collected stream into
/// [`RunAggregates`] after the run — the same collector/stats seam a hardware-in-the-loop
/// backend would feed from a real PMU instead of the synthetic stream.
#[derive(Debug, Clone, Default)]
pub struct CounterCollector {
    samples: Vec<CounterSample>,
}

impl CounterCollector {
    /// An empty collector.
    pub fn new() -> Self {
        CounterCollector::default()
    }

    /// An empty collector with space reserved for `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        CounterCollector {
            samples: Vec::with_capacity(capacity),
        }
    }

    /// The collected samples, in execution order.
    pub fn samples(&self) -> &[CounterSample] {
        &self.samples
    }

    /// Consumes the collector, returning the sample stream.
    pub fn into_samples(self) -> Vec<CounterSample> {
        self.samples
    }
}

impl EpochSink for CounterCollector {
    fn on_epoch(&mut self, epoch: &EpochResult) {
        self.samples.push(CounterSample {
            time_s: epoch.time_s,
            temperature_c: epoch.temperature_c,
            counters: epoch.counters,
        });
    }
}

/// Stats half of the counter-profile split: pure folds from a [`CounterSample`] stream to
/// [`RunAggregates`], with every quantity derived from the counters alone.
///
/// Energy is reconstructed as `Σ total_chip_power_w · time_s` per epoch, so it excludes the
/// DVFS switch-energy penalty the analytic simulator adds outside the power counter — the
/// counter profile is a *measurement-style* view, deterministic but deliberately not
/// bit-identical to the simulator's energy accounting on platforms with non-zero switch
/// energy. Rail energies are attributed by the relative big/little utilization counters
/// (an estimate; the PMU has no per-rail energy channel).
#[derive(Debug, Clone, Copy, Default)]
pub struct CounterStats;

impl CounterStats {
    /// Folds `samples` into aggregates. `initial_temperature_c` seeds the peak-temperature
    /// max exactly like the live runner's initial thermal state.
    pub fn aggregate(samples: &[CounterSample], initial_temperature_c: f64) -> RunAggregates {
        let mut total_time = 0.0;
        let mut total_energy = 0.0;
        let mut total_instructions = 0.0;
        let mut big_rail_energy = 0.0;
        let mut little_rail_energy = 0.0;
        let mut peak_temperature_c = initial_temperature_c;
        for sample in samples {
            let epoch_energy = sample.counters.total_chip_power_w * sample.time_s;
            total_time += sample.time_s;
            total_energy += epoch_energy;
            total_instructions += sample.counters.instructions_retired;
            let big_w = sample.counters.big_cluster_utilization_per_core;
            let little_w = sample.counters.little_cluster_utilization_sum;
            let denom = big_w + little_w;
            let big_share = if denom > 0.0 { big_w / denom } else { 0.5 };
            big_rail_energy += big_share * epoch_energy;
            little_rail_energy += (1.0 - big_share) * epoch_energy;
            if sample.temperature_c > peak_temperature_c {
                peak_temperature_c = sample.temperature_c;
            }
        }
        let average_power_w = if total_time > 0.0 {
            total_energy / total_time
        } else {
            0.0
        };
        let ppw = if total_energy > 0.0 {
            total_instructions / 1e9 / total_energy
        } else {
            0.0
        };
        RunAggregates {
            epochs: samples.len(),
            execution_time_s: total_time,
            energy_j: total_energy,
            instructions: total_instructions,
            big_rail_energy_j: big_rail_energy,
            little_rail_energy_j: little_rail_energy,
            average_power_w,
            ppw,
            peak_temperature_c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterParams;
    use crate::perf::PerfModel;
    use crate::power::PowerModel;

    fn phase() -> PhaseSpec {
        PhaseSpec {
            name: "mixed".into(),
            instructions: 60e6,
            parallel_fraction: 0.5,
            memory_refs_per_instr: 0.3,
            l2_miss_rate: 0.05,
            branch_fraction: 0.12,
            branch_miss_rate: 0.06,
            ilp_scale: 0.8,
        }
    }

    fn snapshot(decision: DrmDecision) -> CounterSnapshot {
        let big = ClusterParams::exynos5422_big();
        let little = ClusterParams::exynos5422_little();
        let ph = phase();
        let perf = PerfModel::default().run_epoch(&big, &little, &decision, &ph);
        let power = PowerModel::default().epoch_power(&big, &little, &decision, &ph, &perf);
        CounterSnapshot::from_epoch(&big, &little, &decision, &ph, &perf, &power)
    }

    #[test]
    fn feature_vector_has_table1_layout() {
        assert_eq!(FEATURE_NAMES.len(), FEATURE_COUNT);
        let snap = snapshot(DrmDecision {
            big_cores: 2,
            little_cores: 2,
            big_freq_mhz: 1200,
            little_freq_mhz: 800,
        });
        let features = snap.to_features();
        assert_eq!(features.len(), FEATURE_COUNT);
        assert_eq!(features[0], snap.instructions_retired);
        assert_eq!(features[8], snap.total_chip_power_w);
    }

    #[test]
    fn counters_reflect_workload_characteristics() {
        let snap = snapshot(DrmDecision {
            big_cores: 4,
            little_cores: 4,
            big_freq_mhz: 2000,
            little_freq_mhz: 1400,
        });
        let ph = phase();
        assert_eq!(snap.instructions_retired, ph.instructions);
        assert!((snap.data_memory_accesses - ph.instructions * 0.3).abs() < 1.0);
        assert!((snap.l2_cache_misses - snap.data_memory_accesses * 0.05).abs() < 1.0);
        assert!(snap.branch_mispredictions > 0.0);
        assert!(snap.noncache_external_requests < snap.data_memory_accesses);
        assert!(snap.cpu_cycles > snap.instructions_retired); // CPI > 1 for this mix
        assert!(snap.total_chip_power_w > 1.0);
    }

    #[test]
    fn utilization_counters_track_active_clusters() {
        let all_cores = snapshot(DrmDecision {
            big_cores: 4,
            little_cores: 4,
            big_freq_mhz: 1000,
            little_freq_mhz: 1000,
        });
        assert!(all_cores.big_cluster_utilization_per_core > 0.0);
        assert!(all_cores.little_cluster_utilization_sum > 0.0);
        assert!(all_cores.little_cluster_utilization_sum <= 4.0);

        let little_only = snapshot(DrmDecision {
            big_cores: 0,
            little_cores: 2,
            big_freq_mhz: 200,
            little_freq_mhz: 1000,
        });
        assert_eq!(little_only.big_cluster_utilization_per_core, 0.0);
        assert!(little_only.little_cluster_utilization_sum > 0.0);
    }

    #[test]
    fn zeroed_snapshot_is_all_zero() {
        let z = CounterSnapshot::zeroed();
        assert!(z.to_features().iter().all(|&f| f == 0.0));
    }

    #[test]
    fn normalized_features_are_bounded() {
        let snap = snapshot(DrmDecision {
            big_cores: 4,
            little_cores: 4,
            big_freq_mhz: 2000,
            little_freq_mhz: 1400,
        });
        for (i, f) in snap.to_normalized_features().iter().enumerate() {
            assert!(
                *f >= 0.0 && *f <= 2.5,
                "normalized feature {i} ({}) out of range: {f}",
                FEATURE_NAMES[i]
            );
        }
        // The zeroed snapshot normalizes to all zeros.
        assert!(CounterSnapshot::zeroed()
            .to_normalized_features()
            .iter()
            .all(|&f| f == 0.0));
    }

    #[test]
    fn higher_frequency_produces_more_cycles_for_memory_bound_epochs() {
        let lo = snapshot(DrmDecision {
            big_cores: 4,
            little_cores: 1,
            big_freq_mhz: 600,
            little_freq_mhz: 200,
        });
        let hi = snapshot(DrmDecision {
            big_cores: 4,
            little_cores: 1,
            big_freq_mhz: 2000,
            little_freq_mhz: 200,
        });
        // Same instructions, but stalls inflate busy cycles at higher frequency.
        assert!(hi.cpu_cycles > lo.cpu_cycles);
    }

    #[test]
    fn counter_collector_retains_the_measured_channels() {
        use crate::apps::Benchmark;
        use crate::governor::OndemandGovernor;
        use crate::platform::{CollectEpochs, Platform};

        let platform = Platform::odroid_xu3();
        let app = Benchmark::Sha.application();
        let mut governor = OndemandGovernor::new(platform.spec().clone());
        let mut collector = CounterCollector::with_capacity(app.epoch_count());
        platform
            .run_application_with(&app, &mut governor, 7, &mut collector)
            .unwrap();
        let mut governor = OndemandGovernor::new(platform.spec().clone());
        let mut full = CollectEpochs::new();
        platform
            .run_application_with(&app, &mut governor, 7, &mut full)
            .unwrap();
        assert_eq!(collector.samples().len(), full.epochs().len());
        for (sample, epoch) in collector.samples().iter().zip(full.epochs()) {
            assert_eq!(sample.time_s, epoch.time_s);
            assert_eq!(sample.temperature_c, epoch.temperature_c);
            assert_eq!(sample.counters, epoch.counters);
        }
        assert_eq!(
            collector.samples().len(),
            collector.clone().into_samples().len()
        );
    }

    #[test]
    fn counter_stats_fold_matches_the_counter_energy_model() {
        let snap = snapshot(DrmDecision {
            big_cores: 2,
            little_cores: 2,
            big_freq_mhz: 1400,
            little_freq_mhz: 1000,
        });
        let samples = [
            CounterSample {
                time_s: 0.5,
                temperature_c: 55.0,
                counters: snap,
            },
            CounterSample {
                time_s: 0.25,
                temperature_c: 62.0,
                counters: snap,
            },
        ];
        let agg = CounterStats::aggregate(&samples, 45.0);
        assert_eq!(agg.epochs, 2);
        assert_eq!(agg.execution_time_s, 0.75);
        let expected_energy = snap.total_chip_power_w * 0.5 + snap.total_chip_power_w * 0.25;
        assert_eq!(agg.energy_j, expected_energy);
        assert_eq!(agg.instructions, 2.0 * snap.instructions_retired);
        assert_eq!(agg.average_power_w, agg.energy_j / agg.execution_time_s);
        assert_eq!(agg.ppw, agg.instructions / 1e9 / agg.energy_j);
        assert_eq!(agg.peak_temperature_c, 62.0);
        // Rail attribution conserves total energy.
        assert!((agg.big_rail_energy_j + agg.little_rail_energy_j - agg.energy_j).abs() < 1e-12);
        assert!(agg.big_rail_energy_j > 0.0 && agg.little_rail_energy_j > 0.0);

        // Empty fold: zeroed aggregates, peak seeded by the initial temperature.
        let empty = CounterStats::aggregate(&[], 45.0);
        assert_eq!(empty.epochs, 0);
        assert_eq!(empty.average_power_w, 0.0);
        assert_eq!(empty.ppw, 0.0);
        assert_eq!(empty.peak_temperature_c, 45.0);
    }
}
