//! Row-major dense matrix with the operations needed by Gaussian-process regression.

use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense, row-major `f64` matrix.
///
/// The type is intentionally small: it supports construction, element access, the arithmetic
/// needed for kernel matrices (add, scale, matrix-vector and matrix-matrix products,
/// transpose) and a few structural helpers. Factorizations live in [`crate::Cholesky`].
///
/// # Examples
///
/// ```
/// use linalg::Matrix;
///
/// # fn main() -> Result<(), linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let v = a.mat_vec(&[1.0, 1.0])?;
/// assert_eq!(v, vec![3.0, 7.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// let z = linalg::Matrix::zeros(2, 3);
    /// assert_eq!(z.shape(), (2, 3));
    /// assert_eq!(z[(1, 2)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// let i = linalg::Matrix::identity(3);
    /// assert_eq!(i[(0, 0)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols` and
    /// [`LinalgError::Empty`] if either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::Empty);
        }
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty row set and [`LinalgError::RaggedRows`]
    /// if the rows do not all share the same length.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::RaggedRows {
                    first: cols,
                    row: i,
                    len: r.len(),
                });
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    ///
    /// This is the main entry point for building kernel (Gram) matrices.
    ///
    /// # Examples
    ///
    /// ```
    /// let m = linalg::Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
    /// assert_eq!(m[(1, 1)], 2.0);
    /// ```
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Returns the number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns a view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns a mutable view of the underlying row-major buffer.
    ///
    /// Used by the blocked triangular solves, which forward-substitute whole rows in place.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Element-wise sum of two matrices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", other.rows, other.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", other.rows, other.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * scalar).collect(),
        }
    }

    /// Adds `value` to every diagonal entry in place (jitter / nugget helper).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, value: f64) {
        assert!(self.is_square(), "add_diagonal requires a square matrix");
        for i in 0..self.rows {
            let idx = i * self.cols + i;
            self.data[idx] += value;
        }
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != cols`.
    pub fn mat_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", v.len()),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, out_i) in out.iter_mut().enumerate() {
            *out_i = crate::vector::dot(self.row(i), v);
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v` into a reused buffer (resized to `rows`).
    ///
    /// Bit-identical to [`mat_vec`](Self::mat_vec) without the per-call allocation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != cols`.
    pub fn mat_vec_into(&self, v: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", v.len()),
            });
        }
        out.clear();
        out.resize(self.rows, 0.0);
        for (i, out_i) in out.iter_mut().enumerate() {
            *out_i = crate::vector::dot(self.row(i), v);
        }
        Ok(())
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols != other.rows`.
    pub fn mat_mul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("left cols == right rows ({})", self.cols),
                found: format!("right has {} rows", other.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Returns the maximum absolute difference between two matrices of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", other.rows, other.cols),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// Returns `true` if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 2);
        assert_eq!(z.shape(), (3, 2));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(0, 2, vec![]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::RaggedRows { row: 1, .. }));
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::identity(2);
        let s = a.add(&b).unwrap();
        assert_eq!(s[(0, 0)], 2.0);
        assert_eq!(s[(0, 1)], 2.0);
        let d = s.sub(&b).unwrap();
        assert_eq!(d, a);
        let sc = a.scale(2.0);
        assert_eq!(sc[(1, 1)], 8.0);
        assert!(a.add(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn mat_vec_and_mat_mul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.mat_vec(&[1.0, 0.0]).unwrap(), vec![1.0, 3.0]);
        assert!(a.mat_vec(&[1.0]).is_err());

        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let c = a.mat_mul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]).unwrap());
        assert!(a.mat_mul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn mat_mul_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let i = Matrix::identity(4);
        assert_eq!(a.mat_mul(&i).unwrap(), a);
        assert_eq!(i.mat_mul(&a).unwrap(), a);
    }

    #[test]
    fn add_diagonal_and_symmetry() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(a.is_symmetric(0.0));
        a.add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 1.5);
        assert_eq!(a[(1, 1)], 1.5);
        assert_eq!(a[(0, 1)], 2.0);

        let ns = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]).unwrap();
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn norms_and_diffs() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        let b = Matrix::zeros(2, 2);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 4.0);
        assert!(a.max_abs_diff(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_index_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn display_contains_all_entries() {
        let m = Matrix::from_rows(&[&[1.0, 2.5]]).unwrap();
        let s = m.to_string();
        assert!(s.contains("1.0000"));
        assert!(s.contains("2.5000"));
    }
}
