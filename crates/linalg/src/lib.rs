//! Small dense linear-algebra kernels used by the PaRMIS reproduction.
//!
//! The Gaussian-process substrate (`gp` crate) needs dense symmetric matrices, Cholesky
//! factorization, triangular solves and a handful of vector helpers. Rather than pulling a
//! heavyweight linear-algebra dependency, this crate implements exactly what is required with
//! a small, well-tested surface:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the usual arithmetic.
//! * [`Cholesky`] — lower-triangular factorization of symmetric positive-definite matrices,
//!   with solves, log-determinant and sampling support.
//! * [`vector`] — free functions over `&[f64]` slices (dot products, norms, axpy, …).
//!
//! # Examples
//!
//! ```
//! use linalg::{Matrix, Cholesky};
//!
//! # fn main() -> Result<(), linalg::LinalgError> {
//! // Solve A x = b for a small SPD system.
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let chol = Cholesky::new(&a)?;
//! let x = chol.solve_vec(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + 1.0 * x[1] - 1.0).abs() < 1e-12);
//! assert!((1.0 * x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod error;
mod matrix;
pub mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::Matrix;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
