//! Error type shared by all fallible operations in the crate.

use std::error::Error;
use std::fmt;

/// Error returned by linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    ///
    /// The fields record the shapes that were expected and found, formatted as
    /// `rows x cols` strings so the error message stays readable for vectors too.
    DimensionMismatch {
        /// Human-readable description of the shape that the operation required.
        expected: String,
        /// Human-readable description of the shape that was provided.
        found: String,
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// Cholesky factorization failed because the matrix is not positive definite
    /// (or is numerically indefinite even after jitter).
    NotPositiveDefinite {
        /// Index of the pivot where the factorization broke down.
        pivot: usize,
    },
    /// An empty matrix or vector was supplied where data is required.
    Empty,
    /// Row data supplied to a constructor was ragged (rows of different lengths).
    RaggedRows {
        /// Length of the first row.
        first: usize,
        /// Index of the first row whose length differs.
        row: usize,
        /// Length of that row.
        len: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Empty => write!(f, "operation requires a non-empty matrix or vector"),
            LinalgError::RaggedRows { first, row, len } => write!(
                f,
                "ragged row data: row 0 has length {first} but row {row} has length {len}"
            ),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LinalgError::DimensionMismatch {
            expected: "3x3".into(),
            found: "2x3".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("3x3"));
        assert!(msg.contains("2x3"));
        assert!(msg.starts_with("dimension mismatch"));

        let e = LinalgError::NotSquare { rows: 2, cols: 5 };
        assert!(e.to_string().contains("2x5"));

        let e = LinalgError::NotPositiveDefinite { pivot: 4 };
        assert!(e.to_string().contains("pivot 4"));

        let e = LinalgError::RaggedRows {
            first: 3,
            row: 2,
            len: 1,
        };
        assert!(e.to_string().contains("row 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
