//! Cholesky factorization of symmetric positive-definite matrices.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` of a symmetric positive-definite matrix `A = L Lᵀ`.
///
/// The factorization is the workhorse of Gaussian-process regression: it provides linear
/// solves against the kernel matrix, the log-determinant needed by the marginal likelihood,
/// and correlated Gaussian sampling (`L z` for standard-normal `z`).
///
/// # Examples
///
/// ```
/// use linalg::{Matrix, Cholesky};
///
/// # fn main() -> Result<(), linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::new(&a)?;
/// // Reconstruct A = L Lᵀ
/// let l = chol.factor();
/// let rebuilt = l.mat_mul(&l.transpose())?;
/// assert!(rebuilt.max_abs_diff(&a)? < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factorizes `a`, retrying with a growing diagonal jitter if the matrix is numerically
    /// indefinite. This is the standard defence for nearly-singular GP kernel matrices.
    ///
    /// Starts at `initial_jitter` and multiplies by 10 for up to `max_attempts` attempts.
    ///
    /// # Errors
    ///
    /// Returns the final [`LinalgError::NotPositiveDefinite`] if every attempt fails, or
    /// [`LinalgError::NotSquare`] / [`LinalgError::Empty`] for invalid input.
    pub fn new_with_jitter(a: &Matrix, initial_jitter: f64, max_attempts: usize) -> Result<Self> {
        match Cholesky::new(a) {
            Ok(c) => return Ok(c),
            Err(LinalgError::NotPositiveDefinite { .. }) => {}
            Err(e) => return Err(e),
        }
        let mut jitter = initial_jitter.max(f64::MIN_POSITIVE);
        let mut last_err = LinalgError::NotPositiveDefinite { pivot: 0 };
        for _ in 0..max_attempts {
            let mut jittered = a.clone();
            jittered.add_diagonal(jitter);
            match Cholesky::new(&jittered) {
                Ok(c) => return Ok(c),
                Err(e @ LinalgError::NotPositiveDefinite { .. }) => {
                    last_err = e;
                    jitter *= 10.0;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// Extends the factorization of an `n x n` matrix `A` to the `(n+1) x (n+1)` matrix
    ///
    /// ```text
    /// A' = [ A    b ]
    ///      [ bᵀ   d ]
    /// ```
    ///
    /// in `O(n²)` instead of refactorizing from scratch in `O(n³)`: the new off-diagonal row
    /// of the factor is `l = L⁻¹ b` (one forward substitution) and the new pivot is
    /// `sqrt(d - l·l)` (Rasmussen & Williams, GPML 2006, Appx. A.3). This is the workhorse of
    /// incremental Gaussian-process refits, which append exactly one observation per search
    /// iteration.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != n` and
    /// [`LinalgError::NotPositiveDefinite`] if the extended matrix is not positive definite
    /// (the caller should fall back to a from-scratch jittered factorization).
    pub fn extend(&mut self, b: &[f64], d: f64) -> Result<()> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {}", b.len()),
            });
        }
        let row = self.solve_lower(b)?;
        let pivot_sq = d - crate::vector::dot(&row, &row);
        if pivot_sq <= 0.0 || !pivot_sq.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: n });
        }
        let pivot = pivot_sq.sqrt();

        // Copy the old factor into the top-left block of the grown matrix row by row
        // (both are row-major, so each copy is contiguous).
        let mut grown = Matrix::zeros(n + 1, n + 1);
        {
            let src = self.l.as_slice();
            let dst = grown.as_mut_slice();
            for i in 0..n {
                dst[i * (n + 1)..i * (n + 1) + n].copy_from_slice(&src[i * n..(i + 1) * n]);
            }
            dst[n * (n + 1)..n * (n + 1) + n].copy_from_slice(&row);
            dst[n * (n + 1) + n] = pivot;
        }
        self.l = grown;
        Ok(())
    }

    /// Returns the extension of this factorization with one row/column, leaving `self`
    /// untouched. See [`extend`](Self::extend).
    ///
    /// # Errors
    ///
    /// Same as [`extend`](Self::extend).
    pub fn extended(&self, b: &[f64], d: f64) -> Result<Self> {
        let mut out = self.clone();
        out.extend(b, d)?;
        Ok(out)
    }

    /// Returns the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Dimension `n` of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    fn check_rhs_len(&self, len: usize) -> Result<()> {
        let n = self.dim();
        if len != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {len}"),
            });
        }
        Ok(())
    }

    /// Solves `L y = b` (forward substitution).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != n`.
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut y = Vec::new();
        self.solve_lower_into(b, &mut y)?;
        Ok(y)
    }

    /// Solves `L y = b` into a caller-supplied buffer, avoiding the per-call allocation of
    /// [`solve_lower`](Self::solve_lower). The buffer is cleared and refilled.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != n`.
    pub fn solve_lower_into(&self, b: &[f64], y: &mut Vec<f64>) -> Result<()> {
        self.check_rhs_len(b.len())?;
        y.clear();
        y.extend_from_slice(b);
        self.forward_substitute_in_place(y);
        Ok(())
    }

    /// Solves `Lᵀ x = y` (backward substitution).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `y.len() != n`.
    pub fn solve_upper(&self, y: &[f64]) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        self.solve_upper_into(y, &mut x)?;
        Ok(x)
    }

    /// Solves `Lᵀ x = y` into a caller-supplied buffer. The buffer is cleared and refilled.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `y.len() != n`.
    pub fn solve_upper_into(&self, y: &[f64], x: &mut Vec<f64>) -> Result<()> {
        self.check_rhs_len(y.len())?;
        x.clear();
        x.extend_from_slice(y);
        self.backward_substitute_in_place(x);
        Ok(())
    }

    /// Solves the full system `A x = b` where `A = L Lᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != n`.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        self.solve_vec_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` into a caller-supplied buffer (forward then backward substitution in
    /// place). The buffer is cleared and refilled.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != n`.
    pub fn solve_vec_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
        self.check_rhs_len(b.len())?;
        x.clear();
        x.extend_from_slice(b);
        self.forward_substitute_in_place(x);
        self.backward_substitute_in_place(x);
        Ok(())
    }

    /// In-place forward substitution `v <- L⁻¹ v`.
    fn forward_substitute_in_place(&self, v: &mut [f64]) {
        let n = self.dim();
        for i in 0..n {
            let row = self.l.row(i);
            let mut sum = v[i];
            for (k, &vk) in v.iter().enumerate().take(i) {
                sum -= row[k] * vk;
            }
            v[i] = sum / row[i];
        }
    }

    /// In-place backward substitution `v <- L⁻ᵀ v`.
    fn backward_substitute_in_place(&self, v: &mut [f64]) {
        let n = self.dim();
        for i in (0..n).rev() {
            let mut sum = v[i];
            for (k, &vk) in v.iter().enumerate().skip(i + 1) {
                sum -= self.l[(k, i)] * vk;
            }
            v[i] = sum / self.l[(i, i)];
        }
    }

    /// Solves `L Y = B` for a whole right-hand-side block in place.
    ///
    /// The forward substitution walks `B` row by row, so every inner loop streams over a
    /// contiguous row-major slice — solving an `n x m` block costs one `O(n² m)` pass with
    /// unit-stride access instead of `m` strided column extractions. Each column of the
    /// result is bit-identical to [`solve_lower`](Self::solve_lower) on that column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `B.rows() != n`.
    pub fn solve_lower_matrix_in_place(&self, b: &mut Matrix) -> Result<()> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("matrix with {n} rows"),
                found: format!("matrix with {} rows", b.rows()),
            });
        }
        let m = b.cols();
        if m == 0 {
            return Ok(());
        }
        let data = b.as_mut_slice();
        for i in 0..n {
            let l_row = self.l.row(i);
            let (head, tail) = data.split_at_mut(i * m);
            let row_i = &mut tail[..m];
            for (k, row_k) in head.chunks_exact(m).enumerate() {
                let l_ik = l_row[k];
                for (yi, yk) in row_i.iter_mut().zip(row_k) {
                    *yi -= l_ik * yk;
                }
            }
            let pivot = l_row[i];
            for yi in row_i.iter_mut() {
                *yi /= pivot;
            }
        }
        Ok(())
    }

    /// Solves `L Y = B`, returning the solution block. See
    /// [`solve_lower_matrix_in_place`](Self::solve_lower_matrix_in_place).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `B.rows() != n`.
    pub fn solve_lower_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let mut out = b.clone();
        self.solve_lower_matrix_in_place(&mut out)?;
        Ok(out)
    }

    /// Solves `Lᵀ X = Y` for a whole right-hand-side block in place (row-major blocked
    /// backward substitution).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `Y.rows() != n`.
    pub fn solve_upper_matrix_in_place(&self, y: &mut Matrix) -> Result<()> {
        let n = self.dim();
        if y.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("matrix with {n} rows"),
                found: format!("matrix with {} rows", y.rows()),
            });
        }
        let m = y.cols();
        if m == 0 {
            return Ok(());
        }
        let data = y.as_mut_slice();
        for i in (0..n).rev() {
            let (head, tail) = data.split_at_mut((i + 1) * m);
            let row_i = &mut head[i * m..];
            for (below, row_k) in tail.chunks_exact(m).enumerate() {
                let l_ki = self.l[(i + 1 + below, i)];
                for (xi, xk) in row_i.iter_mut().zip(row_k) {
                    *xi -= l_ki * xk;
                }
            }
            let pivot = self.l[(i, i)];
            for xi in row_i.iter_mut() {
                *xi /= pivot;
            }
        }
        Ok(())
    }

    /// Solves `A X = B` where `A = L Lᵀ` with one blocked forward and one blocked backward
    /// substitution over the whole right-hand-side block (cache-contiguous, no per-column
    /// allocation). Each column of the result is bit-identical to
    /// [`solve_vec`](Self::solve_vec) on that column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `B.rows() != n`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let mut out = b.clone();
        self.solve_lower_matrix_in_place(&mut out)?;
        self.solve_upper_matrix_in_place(&mut out)?;
        Ok(out)
    }

    /// Log-determinant of `A`, computed as `2 Σ log L_ii`.
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Computes the inverse of `A` explicitly. Prefer the solve methods when possible; the
    /// explicit inverse is only used by tests and diagnostic code.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (which cannot occur for a well-formed factor).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Multiplies the factor by a vector: returns `L v`, the standard way to turn iid
    /// standard-normal draws into draws from `N(0, A)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != n`.
    pub fn factor_mul_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        self.l.mat_vec(v)
    }

    /// [`factor_mul_vec`](Self::factor_mul_vec) into a reused buffer (resized to `n`):
    /// the allocation-free form used by scratch-reusing posterior samplers.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != n`.
    pub fn factor_mul_vec_into(&self, v: &[f64], out: &mut Vec<f64>) -> Result<()> {
        self.l.mat_vec_into(v, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]).unwrap()
    }

    #[test]
    fn factorization_reconstructs_input() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.factor();
        let rebuilt = l.mat_mul(&l.transpose()).unwrap();
        assert!(rebuilt.max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn solve_matches_direct_substitution() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let b = vec![1.0, -2.0, 3.0];
        let x = chol.solve_vec(&b).unwrap();
        let ax = a.mat_vec(&x).unwrap();
        for (lhs, rhs) in ax.iter().zip(&b) {
            assert!((lhs - rhs).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_matrix_gives_inverse() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let inv = chol.inverse().unwrap();
        let prod = a.mat_mul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn log_determinant_matches_known_value() {
        // det of diag(2, 3, 4) is 24.
        let a = Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[0.0, 3.0, 0.0], &[0.0, 0.0, 4.0]]).unwrap();
        let chol = Cholesky::new(&a).unwrap();
        assert!((chol.log_determinant() - 24.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_spd_and_non_square() {
        let not_pd = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&not_pd),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let not_square = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&not_square),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn jitter_recovers_semi_definite_matrix() {
        // Rank-deficient matrix (outer product), PSD but not PD.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(Cholesky::new(&a).is_err());
        let chol = Cholesky::new_with_jitter(&a, 1e-10, 12).unwrap();
        assert_eq!(chol.dim(), 2);
        // The jittered solve should still roughly satisfy A x ≈ b for b in the column space.
        let x = chol.solve_vec(&[2.0, 2.0]).unwrap();
        let ax = a.mat_vec(&x).unwrap();
        assert!((ax[0] - 2.0).abs() < 1e-2);
    }

    #[test]
    fn jitter_passes_through_other_errors() {
        let not_square = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new_with_jitter(&not_square, 1e-9, 5),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let chol = Cholesky::new(&spd3()).unwrap();
        assert!(chol.solve_vec(&[1.0, 2.0]).is_err());
        assert!(chol.solve_lower(&[1.0]).is_err());
        assert!(chol.solve_upper(&[1.0]).is_err());
        assert!(chol.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }

    fn spd4() -> Matrix {
        Matrix::from_rows(&[
            &[8.0, 2.0, 1.0, 0.5],
            &[2.0, 6.0, 2.0, 1.0],
            &[1.0, 2.0, 5.0, 2.0],
            &[0.5, 1.0, 2.0, 4.0],
        ])
        .unwrap()
    }

    #[test]
    fn extend_matches_from_scratch_factorization() {
        let a = spd4();
        let leading = Matrix::from_fn(3, 3, |i, j| a[(i, j)]);
        let mut chol = Cholesky::new(&leading).unwrap();
        chol.extend(&[a[(3, 0)], a[(3, 1)], a[(3, 2)]], a[(3, 3)])
            .unwrap();
        let full = Cholesky::new(&a).unwrap();
        assert_eq!(chol.dim(), 4);
        assert!(chol.factor().max_abs_diff(full.factor()).unwrap() < 1e-10);
    }

    #[test]
    fn extended_leaves_original_untouched() {
        let chol = Cholesky::new(&spd3()).unwrap();
        let bigger = chol.extended(&[0.5, 0.25, 0.1], 7.0).unwrap();
        assert_eq!(chol.dim(), 3);
        assert_eq!(bigger.dim(), 4);
    }

    #[test]
    fn extend_rejects_indefinite_extension_and_bad_lengths() {
        let mut chol = Cholesky::new(&spd3()).unwrap();
        // A huge off-diagonal coupling with a tiny new diagonal cannot be SPD.
        assert!(matches!(
            chol.extended(&[100.0, 0.0, 0.0], 1.0),
            Err(LinalgError::NotPositiveDefinite { pivot: 3 })
        ));
        assert!(chol.extend(&[1.0], 1.0).is_err());
        // The failed attempts must not have corrupted the factor.
        assert_eq!(chol.dim(), 3);
        let x = chol.solve_vec(&[1.0, 2.0, 3.0]).unwrap();
        let ax = spd3().mat_vec(&x).unwrap();
        assert!((ax[0] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn blocked_matrix_solves_match_per_column_vector_solves() {
        let a = spd4();
        let chol = Cholesky::new(&a).unwrap();
        let b = Matrix::from_fn(4, 5, |i, j| (i as f64 - 1.3) * (j as f64 + 0.7));
        let lower = chol.solve_lower_matrix(&b).unwrap();
        let full = chol.solve_matrix(&b).unwrap();
        for j in 0..5 {
            let col = b.col(j);
            let y = chol.solve_lower(&col).unwrap();
            let x = chol.solve_vec(&col).unwrap();
            for i in 0..4 {
                assert_eq!(
                    lower[(i, j)],
                    y[i],
                    "solve_lower_matrix diverged at ({i},{j})"
                );
                assert_eq!(full[(i, j)], x[i], "solve_matrix diverged at ({i},{j})");
            }
        }
    }

    #[test]
    fn blocked_solves_accept_zero_column_rhs() {
        let chol = Cholesky::new(&spd3()).unwrap();
        let empty = Matrix::zeros(3, 0);
        assert_eq!(chol.solve_matrix(&empty).unwrap().shape(), (3, 0));
        assert_eq!(chol.solve_lower_matrix(&empty).unwrap().shape(), (3, 0));
    }

    #[test]
    fn into_variants_reuse_buffers_and_match_allocating_solves() {
        let chol = Cholesky::new(&spd3()).unwrap();
        let b = [1.0, -2.0, 3.0];
        let mut buf = vec![99.0; 17]; // deliberately wrong size and contents
        chol.solve_lower_into(&b, &mut buf).unwrap();
        assert_eq!(buf, chol.solve_lower(&b).unwrap());
        chol.solve_upper_into(&b, &mut buf).unwrap();
        assert_eq!(buf, chol.solve_upper(&b).unwrap());
        chol.solve_vec_into(&b, &mut buf).unwrap();
        assert_eq!(buf, chol.solve_vec(&b).unwrap());
        assert!(chol.solve_vec_into(&[1.0], &mut buf).is_err());
    }

    #[test]
    fn factor_mul_vec_matches_manual_product() {
        let chol = Cholesky::new(&spd3()).unwrap();
        let v = vec![1.0, 2.0, 3.0];
        let lv = chol.factor_mul_vec(&v).unwrap();
        let manual = chol.factor().mat_vec(&v).unwrap();
        assert_eq!(lv, manual);
    }
}
