//! Cholesky factorization of symmetric positive-definite matrices.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` of a symmetric positive-definite matrix `A = L Lᵀ`.
///
/// The factorization is the workhorse of Gaussian-process regression: it provides linear
/// solves against the kernel matrix, the log-determinant needed by the marginal likelihood,
/// and correlated Gaussian sampling (`L z` for standard-normal `z`).
///
/// # Examples
///
/// ```
/// use linalg::{Matrix, Cholesky};
///
/// # fn main() -> Result<(), linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::new(&a)?;
/// // Reconstruct A = L Lᵀ
/// let l = chol.factor();
/// let rebuilt = l.mat_mul(&l.transpose())?;
/// assert!(rebuilt.max_abs_diff(&a)? < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factorizes `a`, retrying with a growing diagonal jitter if the matrix is numerically
    /// indefinite. This is the standard defence for nearly-singular GP kernel matrices.
    ///
    /// Starts at `initial_jitter` and multiplies by 10 for up to `max_attempts` attempts.
    ///
    /// # Errors
    ///
    /// Returns the final [`LinalgError::NotPositiveDefinite`] if every attempt fails, or
    /// [`LinalgError::NotSquare`] / [`LinalgError::Empty`] for invalid input.
    pub fn new_with_jitter(a: &Matrix, initial_jitter: f64, max_attempts: usize) -> Result<Self> {
        match Cholesky::new(a) {
            Ok(c) => return Ok(c),
            Err(LinalgError::NotPositiveDefinite { .. }) => {}
            Err(e) => return Err(e),
        }
        let mut jitter = initial_jitter.max(f64::MIN_POSITIVE);
        let mut last_err = LinalgError::NotPositiveDefinite { pivot: 0 };
        for _ in 0..max_attempts {
            let mut jittered = a.clone();
            jittered.add_diagonal(jitter);
            match Cholesky::new(&jittered) {
                Ok(c) => return Ok(c),
                Err(e @ LinalgError::NotPositiveDefinite { .. }) => {
                    last_err = e;
                    jitter *= 10.0;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// Returns the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Dimension `n` of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `L y = b` (forward substitution).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != n`.
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {}", b.len()),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                sum -= self.l[(i, k)] * yk;
            }
            y[i] = sum / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `Lᵀ x = y` (backward substitution).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `y.len() != n`.
    pub fn solve_upper(&self, y: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if y.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {}", y.len()),
            });
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l[(k, i)] * xk;
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves the full system `A x = b` where `A = L Lᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != n`.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.solve_lower(b)?;
        self.solve_upper(&y)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `B.rows() != n`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("matrix with {n} rows"),
                found: format!("matrix with {} rows", b.rows()),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve_vec(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Log-determinant of `A`, computed as `2 Σ log L_ii`.
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Computes the inverse of `A` explicitly. Prefer the solve methods when possible; the
    /// explicit inverse is only used by tests and diagnostic code.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (which cannot occur for a well-formed factor).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Multiplies the factor by a vector: returns `L v`, the standard way to turn iid
    /// standard-normal draws into draws from `N(0, A)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != n`.
    pub fn factor_mul_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        self.l.mat_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]).unwrap()
    }

    #[test]
    fn factorization_reconstructs_input() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.factor();
        let rebuilt = l.mat_mul(&l.transpose()).unwrap();
        assert!(rebuilt.max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn solve_matches_direct_substitution() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let b = vec![1.0, -2.0, 3.0];
        let x = chol.solve_vec(&b).unwrap();
        let ax = a.mat_vec(&x).unwrap();
        for (lhs, rhs) in ax.iter().zip(&b) {
            assert!((lhs - rhs).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_matrix_gives_inverse() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let inv = chol.inverse().unwrap();
        let prod = a.mat_mul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn log_determinant_matches_known_value() {
        // det of diag(2, 3, 4) is 24.
        let a = Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[0.0, 3.0, 0.0], &[0.0, 0.0, 4.0]]).unwrap();
        let chol = Cholesky::new(&a).unwrap();
        assert!((chol.log_determinant() - 24.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_spd_and_non_square() {
        let not_pd = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&not_pd),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let not_square = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&not_square),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn jitter_recovers_semi_definite_matrix() {
        // Rank-deficient matrix (outer product), PSD but not PD.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(Cholesky::new(&a).is_err());
        let chol = Cholesky::new_with_jitter(&a, 1e-10, 12).unwrap();
        assert_eq!(chol.dim(), 2);
        // The jittered solve should still roughly satisfy A x ≈ b for b in the column space.
        let x = chol.solve_vec(&[2.0, 2.0]).unwrap();
        let ax = a.mat_vec(&x).unwrap();
        assert!((ax[0] - 2.0).abs() < 1e-2);
    }

    #[test]
    fn jitter_passes_through_other_errors() {
        let not_square = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new_with_jitter(&not_square, 1e-9, 5),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let chol = Cholesky::new(&spd3()).unwrap();
        assert!(chol.solve_vec(&[1.0, 2.0]).is_err());
        assert!(chol.solve_lower(&[1.0]).is_err());
        assert!(chol.solve_upper(&[1.0]).is_err());
        assert!(chol.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn factor_mul_vec_matches_manual_product() {
        let chol = Cholesky::new(&spd3()).unwrap();
        let v = vec![1.0, 2.0, 3.0];
        let lv = chol.factor_mul_vec(&v).unwrap();
        let manual = chol.factor().mat_vec(&v).unwrap();
        assert_eq!(lv, manual);
    }
}
