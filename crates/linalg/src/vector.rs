//! Free functions over `&[f64]` slices.
//!
//! These helpers are deliberately panic-on-mismatch: callers inside this workspace always
//! control both operands, and a silent wrong-length dot product would be a far worse bug than
//! a loud panic. Each function documents its panic condition.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(linalg::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
///
/// # Examples
///
/// ```
/// assert_eq!(linalg::vector::norm2(&[3.0, 4.0]), 5.0);
/// ```
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Element-wise sum `a + b` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Returns `a` scaled by `alpha` as a new vector.
pub fn scale(alpha: f64, a: &[f64]) -> Vec<f64> {
    a.iter().map(|x| alpha * x).collect()
}

/// Arithmetic mean of a slice; returns 0.0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Sample variance (divides by `n`); returns 0.0 for slices shorter than 2.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Standard deviation derived from [`variance`].
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Maximum value of a slice; returns negative infinity for an empty slice.
pub fn max(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Minimum value of a slice; returns positive infinity for an empty slice.
pub fn min(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Index of the maximum element, or `None` for an empty slice.
///
/// Ties resolve to the first maximal index; NaN entries are never selected unless all
/// entries are NaN, in which case index 0 is returned.
pub fn argmax(a: &[f64]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, v) in a.iter().enumerate().skip(1) {
        if *v > a[best] || a[best].is_nan() {
            best = i;
        }
    }
    Some(best)
}

/// Index of the minimum element, or `None` for an empty slice.
pub fn argmin(a: &[f64]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, v) in a.iter().enumerate().skip(1) {
        if *v < a[best] || a[best].is_nan() {
            best = i;
        }
    }
    Some(best)
}

/// Clamps every element of `a` into `[lo, hi]`, returning a new vector.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn clamp(a: &[f64], lo: f64, hi: f64) -> Vec<f64> {
    assert!(lo <= hi, "clamp requires lo <= hi");
    a.iter().map(|x| x.clamp(lo, hi)).collect()
}

/// Linearly interpolates between `a` and `b` with weight `t` in `[0, 1]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn lerp(a: &[f64], b: &[f64], t: f64) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "lerp length mismatch");
    a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_norm_distance() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    #[should_panic]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_add_sub_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 2.0]), vec![2.0, 2.0]);
        assert_eq!(scale(0.5, &[2.0, 4.0]), vec![1.0, 2.0]);
    }

    #[test]
    fn statistics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 2.0, 3.0]) - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn extremes_and_arg() {
        assert_eq!(max(&[1.0, 5.0, 3.0]), 5.0);
        assert_eq!(min(&[1.0, 5.0, 3.0]), 1.0);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmin(&[1.0, 5.0, 3.0]), Some(0));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[]), None);
        // Ties prefer the first index.
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
        // NaN entries are skipped over.
        assert_eq!(argmax(&[f64::NAN, 1.0]), Some(1));
    }

    #[test]
    fn clamp_and_lerp() {
        assert_eq!(clamp(&[-1.0, 0.5, 2.0], 0.0, 1.0), vec![0.0, 0.5, 1.0]);
        assert_eq!(lerp(&[0.0, 10.0], &[10.0, 20.0], 0.5), vec![5.0, 15.0]);
        assert_eq!(lerp(&[0.0], &[10.0], 0.0), vec![0.0]);
        assert_eq!(lerp(&[0.0], &[10.0], 1.0), vec![10.0]);
    }

    #[test]
    #[should_panic]
    fn clamp_invalid_bounds_panics() {
        clamp(&[1.0], 2.0, 1.0);
    }
}
