//! Property-based tests for the dense linear-algebra kernels.

use linalg::{vector, Cholesky, Matrix};
use proptest::prelude::*;

/// Strategy producing small vectors of well-behaved floats.
fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len)
}

/// Strategy producing a random matrix with entries in [-10, 10].
fn matrix_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, n * n)
        .prop_map(move |data| Matrix::from_vec(n, n, data).expect("length matches"))
}

/// Builds a symmetric positive-definite matrix as B Bᵀ + n·I from arbitrary B.
fn spd_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    matrix_strategy(n).prop_map(move |b| {
        let mut spd = b.mat_mul(&b.transpose()).expect("square product");
        spd.add_diagonal(n as f64);
        spd
    })
}

proptest! {
    #[test]
    fn dot_is_commutative(a in vec_strategy(8), b in vec_strategy(8)) {
        let ab = vector::dot(&a, &b);
        let ba = vector::dot(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn norm_is_nonnegative_and_zero_only_for_zero(a in vec_strategy(6)) {
        let n = vector::norm2(&a);
        prop_assert!(n >= 0.0);
        if a.iter().all(|&x| x == 0.0) {
            prop_assert_eq!(n, 0.0);
        }
    }

    #[test]
    fn triangle_inequality_for_distance(
        a in vec_strategy(5),
        b in vec_strategy(5),
        c in vec_strategy(5),
    ) {
        let ac = vector::distance(&a, &c);
        let ab = vector::distance(&a, &b);
        let bc = vector::distance(&b, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn transpose_is_involutive(m in matrix_strategy(4)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_transpose_identity(m in matrix_strategy(3), v in vec_strategy(3)) {
        // (Mᵀ)ᵀ v == M v
        let direct = m.mat_vec(&v).unwrap();
        let via_transpose = m.transpose().transpose().mat_vec(&v).unwrap();
        for (a, b) in direct.iter().zip(&via_transpose) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_reconstructs_spd_matrix(a in spd_strategy(4)) {
        let chol = Cholesky::new(&a).expect("spd matrix factorizes");
        let l = chol.factor();
        let rebuilt = l.mat_mul(&l.transpose()).unwrap();
        prop_assert!(rebuilt.max_abs_diff(&a).unwrap() < 1e-6);
    }

    #[test]
    fn cholesky_solve_satisfies_system(a in spd_strategy(4), b in vec_strategy(4)) {
        let chol = Cholesky::new(&a).expect("spd matrix factorizes");
        let x = chol.solve_vec(&b).unwrap();
        let ax = a.mat_vec(&x).unwrap();
        for (lhs, rhs) in ax.iter().zip(&b) {
            prop_assert!((lhs - rhs).abs() < 1e-5, "residual too large: {} vs {}", lhs, rhs);
        }
    }

    #[test]
    fn cholesky_log_det_is_finite_and_consistent(a in spd_strategy(3)) {
        let chol = Cholesky::new(&a).unwrap();
        let logdet = chol.log_determinant();
        prop_assert!(logdet.is_finite());
        // log det(A) must equal 2 * sum(log diag(L)) by construction; re-derive from factor.
        let manual: f64 = (0..3).map(|i| chol.factor()[(i, i)].ln()).sum::<f64>() * 2.0;
        prop_assert!((logdet - manual).abs() < 1e-12);
    }

    #[test]
    fn spd_matrices_are_symmetric(a in spd_strategy(4)) {
        prop_assert!(a.is_symmetric(1e-9));
    }

    #[test]
    fn cholesky_extend_matches_from_scratch(a in spd_strategy(5)) {
        // Factor the leading 4x4 block, extend by the last row/column, and compare against
        // the from-scratch factorization of the full 5x5 matrix.
        let leading = Matrix::from_fn(4, 4, |i, j| a[(i, j)]);
        let mut incremental = Cholesky::new(&leading).expect("leading block is SPD");
        let b: Vec<f64> = (0..4).map(|j| a[(4, j)]).collect();
        incremental.extend(&b, a[(4, 4)]).expect("extension of an SPD matrix is SPD");
        let full = Cholesky::new(&a).expect("full matrix is SPD");
        prop_assert!(
            incremental.factor().max_abs_diff(full.factor()).unwrap() < 1e-8,
            "extended factor diverged from the from-scratch factor"
        );
    }

    #[test]
    fn blocked_matrix_solve_matches_vector_solves(a in spd_strategy(4), b in vec_strategy(8)) {
        let chol = Cholesky::new(&a).unwrap();
        let rhs = Matrix::from_vec(4, 2, b).unwrap();
        let blocked = chol.solve_matrix(&rhs).unwrap();
        for j in 0..2 {
            let x = chol.solve_vec(&rhs.col(j)).unwrap();
            for i in 0..4 {
                prop_assert_eq!(blocked[(i, j)], x[i]);
            }
        }
    }

    #[test]
    fn lerp_endpoints(a in vec_strategy(4), b in vec_strategy(4)) {
        let at_zero = vector::lerp(&a, &b, 0.0);
        let at_one = vector::lerp(&a, &b, 1.0);
        for i in 0..4 {
            prop_assert!((at_zero[i] - a[i]).abs() < 1e-12);
            prop_assert!((at_one[i] - b[i]).abs() < 1e-12);
        }
    }
}
