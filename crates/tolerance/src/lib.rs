//! Shared numeric-comparison helpers for the accuracy test suites.
//!
//! The fast-math tier ([`fastmath`] and its call sites in `gp` / `soc-sim`) promises
//! *bounded* error against the seed-exact scalar paths rather than bit-identity. Those
//! bounds are contracts, so the tests that enforce them need comparison helpers that
//! (a) speak the same units the contracts are written in — ULPs for kernel-level
//! comparisons against libm, absolute/relative error for end-to-end trajectories — and
//! (b) report the *worst* offender over a sweep, not just the first failure, so a bound
//! regression is diagnosable from the CI log alone.
//!
//! Three layers:
//!
//! - [`ulp_diff`] / [`abs_diff`] / [`rel_diff`]: raw distance measures.
//! - [`assert_close_ulps`] / [`assert_close_abs`] / [`assert_close_rel`]: single-pair
//!   assertions with formatted context on failure.
//! - [`ErrorStats`]: a fold over many comparisons that tracks the maximum error and the
//!   input that produced it, with [`ErrorStats::assert_max_ulps`] /
//!   [`ErrorStats::assert_max_abs`] reporting the full worst-case context on failure.

/// Distance in units-in-the-last-place between two finite doubles.
///
/// Uses the standard order-preserving map from IEEE-754 bit patterns to a signed
/// integer line, so the distance is well defined across zero (`-0.0` and `+0.0` are 0
/// ULPs apart). Returns `u64::MAX` if either input is NaN; infinities of equal sign
/// compare equal (0 ULPs) and are `u64::MAX` from everything else.
///
/// # Examples
///
/// ```
/// use tolerance::ulp_diff;
///
/// assert_eq!(ulp_diff(1.0, 1.0), 0);
/// assert_eq!(ulp_diff(1.0, 1.0 + f64::EPSILON), 1);
/// assert_eq!(ulp_diff(-0.0, 0.0), 0);
/// assert_eq!(ulp_diff(1.0, f64::NAN), u64::MAX);
/// ```
pub fn ulp_diff(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    if a == b {
        // Covers -0.0 == 0.0 and equal-signed infinities.
        return 0;
    }
    if a.is_infinite() || b.is_infinite() {
        return u64::MAX;
    }
    let to_line = |x: f64| -> i64 {
        let bits = x.to_bits() as i64;
        // Map negative floats onto the negative half of the integer line so the
        // ordering of the line matches the ordering of the floats.
        if bits < 0 {
            i64::MIN.wrapping_sub(bits)
        } else {
            bits
        }
    };
    let (la, lb) = (to_line(a), to_line(b));
    la.abs_diff(lb)
}

/// Absolute difference `|a - b|`; NaN inputs yield NaN (which fails any bound check).
pub fn abs_diff(a: f64, b: f64) -> f64 {
    (a - b).abs()
}

/// Relative difference `|a - b| / max(|a|, |b|)`, or the absolute difference when both
/// magnitudes are below `f64::MIN_POSITIVE` (so near-zero pairs don't divide by zero).
pub fn rel_diff(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale < f64::MIN_POSITIVE {
        abs_diff(a, b)
    } else {
        abs_diff(a, b) / scale
    }
}

/// Asserts `a` and `b` are within `max_ulps` units-in-the-last-place.
///
/// # Panics
///
/// Panics with both values, their ULP distance and the caller's context if the bound is
/// exceeded (or either value is NaN while the other is not).
#[track_caller]
pub fn assert_close_ulps(a: f64, b: f64, max_ulps: u64, context: &str) {
    let d = ulp_diff(a, b);
    assert!(
        d <= max_ulps,
        "{context}: {a:e} vs {b:e} differ by {d} ULPs (allowed {max_ulps}); abs diff {:e}",
        abs_diff(a, b),
    );
}

/// Asserts `|a - b| <= max_abs`.
///
/// # Panics
///
/// Panics with both values, the absolute difference and the caller's context if the
/// bound is exceeded or the difference is NaN.
#[track_caller]
pub fn assert_close_abs(a: f64, b: f64, max_abs: f64, context: &str) {
    let d = abs_diff(a, b);
    assert!(
        d <= max_abs,
        "{context}: {a:e} vs {b:e} differ by {d:e} (allowed {max_abs:e}; {} ULPs)",
        ulp_diff(a, b),
    );
}

/// Asserts `rel_diff(a, b) <= max_rel`.
///
/// # Panics
///
/// Panics with both values, the relative difference and the caller's context if the
/// bound is exceeded or the difference is NaN.
#[track_caller]
pub fn assert_close_rel(a: f64, b: f64, max_rel: f64, context: &str) {
    let d = rel_diff(a, b);
    assert!(
        d <= max_rel,
        "{context}: {a:e} vs {b:e} differ by rel {d:e} (allowed {max_rel:e})",
    );
}

/// Fold over many `(input, got, want)` comparisons tracking the worst absolute and ULP
/// error and the inputs that produced them.
///
/// # Examples
///
/// ```
/// use tolerance::ErrorStats;
///
/// let mut stats = ErrorStats::new("cos sweep");
/// for i in 0..1000 {
///     let x = i as f64 * 0.01;
///     stats.record(x, x.cos(), x.cos());
/// }
/// stats.assert_max_ulps(0);
/// stats.assert_max_abs(0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ErrorStats {
    label: String,
    count: u64,
    max_abs: f64,
    max_abs_at: f64,
    max_ulps: u64,
    max_ulps_at: f64,
}

impl ErrorStats {
    /// Creates an empty fold labelled `label` (shown in failure reports).
    pub fn new(label: &str) -> Self {
        Self {
            label: label.to_string(),
            count: 0,
            max_abs: 0.0,
            max_abs_at: f64::NAN,
            max_ulps: 0,
            max_ulps_at: f64::NAN,
        }
    }

    /// Records one comparison of `got` against `want` at sweep input `at`.
    pub fn record(&mut self, at: f64, got: f64, want: f64) {
        self.count += 1;
        let a = abs_diff(got, want);
        // NaN-vs-NaN agreement is 0 error; NaN vs non-NaN surfaces as max ULPs below.
        if a > self.max_abs {
            self.max_abs = a;
            self.max_abs_at = at;
        }
        let u = ulp_diff(got, want);
        if (got.is_nan() != want.is_nan()) || (!got.is_nan() && u > self.max_ulps) {
            self.max_ulps = if got.is_nan() != want.is_nan() {
                u64::MAX
            } else {
                u
            };
            self.max_ulps_at = at;
        }
    }

    /// Number of comparisons recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Worst absolute error seen so far (0.0 if nothing recorded).
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }

    /// Worst ULP distance seen so far (0 if nothing recorded).
    pub fn max_ulps(&self) -> u64 {
        self.max_ulps
    }

    /// Asserts the worst ULP distance over the whole sweep is `<= max_ulps`.
    ///
    /// # Panics
    ///
    /// Panics with the worst offender's input and both error measures otherwise.
    #[track_caller]
    pub fn assert_max_ulps(&self, max_ulps: u64) {
        assert!(
            self.max_ulps <= max_ulps,
            "{}: worst ULP error {} at input {:e} exceeds allowed {} \
             ({} comparisons, worst abs {:e} at {:e})",
            self.label,
            self.max_ulps,
            self.max_ulps_at,
            max_ulps,
            self.count,
            self.max_abs,
            self.max_abs_at,
        );
    }

    /// Asserts the worst absolute error over the whole sweep is `<= max_abs`.
    ///
    /// # Panics
    ///
    /// Panics with the worst offender's input and both error measures otherwise.
    #[track_caller]
    pub fn assert_max_abs(&self, max_abs: f64) {
        assert!(
            self.max_abs <= max_abs,
            "{}: worst abs error {:e} at input {:e} exceeds allowed {:e} \
             ({} comparisons, worst ULP {} at {:e})",
            self.label,
            self.max_abs,
            self.max_abs_at,
            max_abs,
            self.count,
            self.max_ulps,
            self.max_ulps_at,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_diff_counts_representable_steps() {
        assert_eq!(ulp_diff(1.0, 1.0), 0);
        assert_eq!(ulp_diff(1.0, 1.0 + f64::EPSILON), 1);
        assert_eq!(ulp_diff(1.0 + f64::EPSILON, 1.0), 1);
        assert_eq!(ulp_diff(1.5, 1.5 + 3.0 * f64::EPSILON), 3);
    }

    #[test]
    fn ulp_diff_is_well_defined_across_zero() {
        assert_eq!(ulp_diff(-0.0, 0.0), 0);
        assert_eq!(ulp_diff(0.0, f64::from_bits(1)), 1);
        assert_eq!(ulp_diff(-f64::from_bits(1), f64::from_bits(1)), 2);
    }

    #[test]
    fn ulp_diff_handles_non_finite() {
        assert_eq!(ulp_diff(f64::NAN, f64::NAN), u64::MAX);
        assert_eq!(ulp_diff(1.0, f64::NAN), u64::MAX);
        assert_eq!(ulp_diff(f64::INFINITY, f64::INFINITY), 0);
        assert_eq!(ulp_diff(f64::NEG_INFINITY, f64::INFINITY), u64::MAX);
        assert_eq!(ulp_diff(f64::INFINITY, 1.0), u64::MAX);
    }

    #[test]
    fn rel_diff_handles_near_zero() {
        assert_eq!(rel_diff(0.0, 0.0), 0.0);
        assert!((rel_diff(1.0, 1.1) - 0.1 / 1.1).abs() < 1e-15);
    }

    #[test]
    fn assertions_pass_within_bounds() {
        assert_close_ulps(1.0, 1.0 + f64::EPSILON, 1, "one ulp apart");
        assert_close_abs(1.0, 1.0 + 1e-13, 1e-12, "within abs bound");
        assert_close_rel(100.0, 100.0 + 1e-11, 1e-12, "within rel bound");
    }

    #[test]
    #[should_panic(expected = "ULPs")]
    fn ulp_assertion_reports_distance() {
        assert_close_ulps(1.0, 1.0 + 4.0 * f64::EPSILON, 2, "too far");
    }

    #[test]
    #[should_panic(expected = "allowed")]
    fn abs_assertion_reports_difference() {
        assert_close_abs(1.0, 2.0, 1e-12, "way off");
    }

    #[test]
    #[should_panic(expected = "allowed")]
    fn nan_fails_abs_assertion() {
        assert_close_abs(f64::NAN, 1.0, 1e9, "nan must not sneak through");
    }

    #[test]
    fn error_stats_track_worst_offender() {
        let mut stats = ErrorStats::new("sweep");
        stats.record(0.0, 1.0, 1.0);
        stats.record(2.0, 1.0, 1.0 + 2.0 * f64::EPSILON);
        stats.record(1.0, 1.0, 1.0 + f64::EPSILON);
        assert_eq!(stats.count(), 3);
        assert_eq!(stats.max_ulps(), 2);
        assert!((stats.max_abs() - 2.0 * f64::EPSILON).abs() < 1e-18);
        stats.assert_max_ulps(2);
        stats.assert_max_abs(3.0 * f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "worst ULP error")]
    fn error_stats_report_worst_input_on_failure() {
        let mut stats = ErrorStats::new("sweep");
        stats.record(7.0, 1.0, 1.0 + 8.0 * f64::EPSILON);
        stats.assert_max_ulps(1);
    }

    #[test]
    fn error_stats_flag_nan_disagreement() {
        let mut stats = ErrorStats::new("nan");
        stats.record(0.5, f64::NAN, 1.0);
        assert_eq!(stats.max_ulps(), u64::MAX);
    }

    #[test]
    fn error_stats_accept_nan_agreement() {
        let mut stats = ErrorStats::new("nan both");
        stats.record(0.5, f64::NAN, f64::NAN);
        stats.assert_max_ulps(0);
    }
}
