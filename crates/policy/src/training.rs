//! Supervised training of DRM policies from labelled decisions.
//!
//! The imitation-learning baseline (paper §V-B) creates an Oracle policy and then trains the
//! shared MLP representation to mimic it. This module provides that trainer: a plain SGD
//! cross-entropy fit of the four heads on a dataset of (counter snapshot, oracle knob
//! indices) pairs.

use crate::drm_policy::{DrmPolicy, Knob};
use crate::features::policy_features;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use soc_sim::counters::CounterSnapshot;

/// One labelled example: the observed counters and the target action index for every knob.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledDecision {
    /// Hardware counters observed before the decision.
    pub counters: CounterSnapshot,
    /// Oracle action index per knob (Big cores, Little cores, Big freq, Little freq).
    pub knob_indices: [usize; 4],
}

/// Configuration of the supervised trainer.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            epochs: 60,
            learning_rate: 0.05,
            seed: 0xC0FFEE,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingReport {
    /// Mean cross-entropy loss (summed over the four heads) after each epoch.
    pub loss_history: Vec<f64>,
    /// Fraction of examples whose four knob predictions all match the labels, measured after
    /// training on the training set itself.
    pub final_accuracy: f64,
}

/// Trains `policy` in place to imitate the labelled decisions.
///
/// Returns a [`TrainingReport`]; an empty dataset yields an empty history and zero accuracy.
///
/// # Examples
///
/// ```
/// use policy::drm_policy::{DrmPolicy, PolicyArchitecture};
/// use policy::training::{train_policy, LabelledDecision, TrainingConfig};
/// use soc_sim::{CounterSnapshot, DecisionSpace};
///
/// let space = DecisionSpace::exynos5422();
/// let mut policy = DrmPolicy::random(&space, &PolicyArchitecture::paper_default(), 1);
/// let data = vec![LabelledDecision {
///     counters: CounterSnapshot::zeroed(),
///     knob_indices: [4, 3, 18, 12],
/// }];
/// let report = train_policy(&mut policy, &data, &TrainingConfig::default());
/// assert_eq!(report.loss_history.len(), TrainingConfig::default().epochs);
/// assert!(report.final_accuracy > 0.99);
/// ```
pub fn train_policy(
    policy: &mut DrmPolicy,
    dataset: &[LabelledDecision],
    config: &TrainingConfig,
) -> TrainingReport {
    if dataset.is_empty() {
        return TrainingReport {
            loss_history: Vec::new(),
            final_accuracy: 0.0,
        };
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    let mut loss_history = Vec::with_capacity(config.epochs);

    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for &idx in &order {
            let example = &dataset[idx];
            let features = policy_features(&example.counters);
            for (head_idx, knob) in Knob::ALL.iter().enumerate() {
                let target = example.knob_indices[head_idx];
                let head = policy.head_mut(*knob);
                let target = target.min(head.output_dim() - 1);
                epoch_loss += head.sgd_step(&features, target, config.learning_rate);
            }
        }
        loss_history.push(epoch_loss / dataset.len() as f64);
    }

    let final_accuracy = accuracy(policy, dataset);
    TrainingReport {
        loss_history,
        final_accuracy,
    }
}

/// Fraction of examples for which every knob prediction matches its label.
pub fn accuracy(policy: &DrmPolicy, dataset: &[LabelledDecision]) -> f64 {
    if dataset.is_empty() {
        return 0.0;
    }
    let head_dims: Vec<usize> = Knob::ALL
        .iter()
        .map(|&k| policy.head(k).output_dim())
        .collect();
    let correct = dataset
        .iter()
        .filter(|ex| {
            let features = policy_features(&ex.counters);
            let predicted = policy.decide_indices(&features);
            predicted
                .iter()
                .zip(&ex.knob_indices)
                .zip(&head_dims)
                // Labels are clamped to the head's range, exactly as training clamps them.
                .all(|((p, t), dim)| *p == (*t).min(dim - 1))
        })
        .count();
    correct as f64 / dataset.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drm_policy::PolicyArchitecture;
    use soc_sim::DecisionSpace;

    fn counters_with_power(power: f64, util: f64) -> CounterSnapshot {
        CounterSnapshot {
            instructions_retired: 5e7,
            cpu_cycles: 1e8,
            branch_mispredictions: 1e5,
            l2_cache_misses: 3e5,
            data_memory_accesses: 1e7,
            noncache_external_requests: 2e5,
            little_cluster_utilization_sum: util * 4.0,
            big_cluster_utilization_per_core: util,
            total_chip_power_w: power,
        }
    }

    #[test]
    fn empty_dataset_is_a_noop() {
        let space = DecisionSpace::exynos5422();
        let mut policy = DrmPolicy::random(&space, &PolicyArchitecture::paper_default(), 1);
        let before = policy.to_flat_parameters();
        let report = train_policy(&mut policy, &[], &TrainingConfig::default());
        assert!(report.loss_history.is_empty());
        assert_eq!(report.final_accuracy, 0.0);
        assert_eq!(policy.to_flat_parameters(), before);
    }

    #[test]
    fn training_fits_a_state_dependent_oracle() {
        // Oracle: low power -> fast configuration, high power -> frugal configuration.
        let space = DecisionSpace::exynos5422();
        let mut policy = DrmPolicy::random(&space, &PolicyArchitecture::paper_default(), 3);
        let mut dataset = Vec::new();
        for i in 0..12 {
            let low_power = counters_with_power(0.5 + i as f64 * 0.02, 0.9);
            dataset.push(LabelledDecision {
                counters: low_power,
                knob_indices: [4, 3, 18, 12],
            });
            let high_power = counters_with_power(6.0 + i as f64 * 0.05, 0.3);
            dataset.push(LabelledDecision {
                counters: high_power,
                knob_indices: [0, 0, 2, 3],
            });
        }
        let config = TrainingConfig {
            epochs: 200,
            learning_rate: 0.08,
            seed: 5,
        };
        let report = train_policy(&mut policy, &dataset, &config);
        assert_eq!(report.loss_history.len(), 200);
        assert!(
            report.loss_history.last().unwrap() < &report.loss_history[0],
            "loss should decrease"
        );
        assert!(
            report.final_accuracy > 0.9,
            "policy should fit the oracle, accuracy {}",
            report.final_accuracy
        );
    }

    #[test]
    fn labels_beyond_head_range_are_clamped_not_panicking() {
        let space = DecisionSpace::exynos5422();
        let mut policy = DrmPolicy::random(&space, &PolicyArchitecture::paper_default(), 9);
        let dataset = vec![LabelledDecision {
            counters: CounterSnapshot::zeroed(),
            knob_indices: [40, 40, 40, 40],
        }];
        let report = train_policy(
            &mut policy,
            &dataset,
            &TrainingConfig {
                epochs: 30,
                ..Default::default()
            },
        );
        assert_eq!(report.loss_history.len(), 30);
    }

    #[test]
    fn accuracy_of_untrained_policy_is_low_on_random_labels() {
        let space = DecisionSpace::exynos5422();
        let policy = DrmPolicy::random(&space, &PolicyArchitecture::paper_default(), 17);
        let dataset: Vec<LabelledDecision> = (0..10)
            .map(|i| LabelledDecision {
                counters: counters_with_power(i as f64 * 0.7, 0.5),
                knob_indices: [(i * 3) % 5, (i * 7) % 4, (i * 11) % 19, (i * 5) % 13],
            })
            .collect();
        let acc = accuracy(&policy, &dataset);
        assert!(
            acc <= 0.5,
            "random labels should not be matched well, got {acc}"
        );
    }
}
