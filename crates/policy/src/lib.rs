//! DRM policy representations.
//!
//! The paper represents a dynamic-resource-management policy as four small multi-layer
//! perceptrons — one per control knob (active Big cores, active Little cores, Big frequency,
//! Little frequency) — each taking the nine Table-I hardware-counter features as input and
//! emitting a softmax over that knob's choices (§V-A "Policy representation"). PaRMIS, RL and
//! IL all share this representation; PaRMIS additionally needs the whole policy to be
//! expressible as a flat parameter vector θ ∈ ℝ^d because its Gaussian-process models live on
//! that space.
//!
//! * [`mlp`] — a plain feed-forward MLP with ReLU hidden layers and a softmax output,
//!   supporting flat-parameter round-tripping and gradient-free perturbation.
//! * [`drm_policy`] — [`drm_policy::DrmPolicy`], the four-headed policy that
//!   implements [`soc_sim::DrmController`] so the simulator can run it directly.
//! * [`features`] — the feature pipeline from [`soc_sim::CounterSnapshot`] to network inputs.
//! * [`training`] — a minimal SGD + cross-entropy trainer used by the imitation-learning
//!   baseline to fit policies to oracle decisions.
//!
//! # Examples
//!
//! ```
//! use policy::drm_policy::{DrmPolicy, PolicyArchitecture};
//! use soc_sim::{DecisionSpace, Platform};
//! use soc_sim::apps::Benchmark;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let space = DecisionSpace::exynos5422();
//! let arch = PolicyArchitecture::paper_default();
//! // A randomly initialized policy is already a valid controller.
//! let mut policy = DrmPolicy::random(&space, &arch, 7);
//! let platform = Platform::odroid_xu3();
//! let summary = platform.run_application(&Benchmark::Fft.application(), &mut policy, 0)?;
//! assert!(summary.energy_j > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drm_policy;
pub mod features;
pub mod mlp;
pub mod training;

pub use drm_policy::{DrmPolicy, PolicyArchitecture};
pub use mlp::Mlp;
