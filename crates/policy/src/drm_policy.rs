//! The four-headed DRM policy of the paper: one MLP per control knob.

use crate::features::{policy_feature_array, POLICY_INPUT_DIM};
use crate::mlp::{Mlp, MlpScratch};
use serde::{Deserialize, Serialize};
use soc_sim::config::{DecisionSpace, DrmDecision, KnobCardinalities};
use soc_sim::counters::CounterSnapshot;
use soc_sim::platform::DrmController;
use std::sync::Arc;

/// The four control knobs, in decision-tuple order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Knob {
    /// Number of active Big cores.
    BigCores,
    /// Number of active Little cores.
    LittleCores,
    /// Big-cluster frequency level.
    BigFrequency,
    /// Little-cluster frequency level.
    LittleFrequency,
}

impl Knob {
    /// All knobs in decision-tuple order.
    pub const ALL: [Knob; 4] = [
        Knob::BigCores,
        Knob::LittleCores,
        Knob::BigFrequency,
        Knob::LittleFrequency,
    ];
}

/// Network architecture shared by all four heads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyArchitecture {
    /// Sizes of the hidden layers (the paper uses two ReLU hidden layers).
    pub hidden_layers: Vec<usize>,
}

impl PolicyArchitecture {
    /// The architecture used throughout the reproduction: two small hidden layers, keeping
    /// the per-policy memory near the ~1 KB the paper reports (Table II).
    pub fn paper_default() -> Self {
        PolicyArchitecture {
            hidden_layers: vec![5, 4],
        }
    }

    /// Full layer-size vector for a head with `output_dim` actions.
    pub fn layer_sizes(&self, output_dim: usize) -> Vec<usize> {
        let mut sizes = Vec::with_capacity(self.hidden_layers.len() + 2);
        sizes.push(POLICY_INPUT_DIM);
        sizes.extend_from_slice(&self.hidden_layers);
        sizes.push(output_dim);
        sizes
    }
}

impl Default for PolicyArchitecture {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A learned DRM policy: four MLP heads mapping the Table-I features to one categorical
/// action per knob, convertible to and from a single flat parameter vector θ.
///
/// The policy implements [`DrmController`], so the simulator can execute it directly; PaRMIS
/// treats [`to_flat_parameters`](Self::to_flat_parameters) as the point θ its Gaussian
/// processes model.
#[derive(Debug, Clone)]
pub struct DrmPolicy {
    space: DecisionSpace,
    architecture: PolicyArchitecture,
    heads: Vec<Mlp>,
    name: Arc<str>,
    /// Forward-pass buffers reused across heads and epochs by [`DrmController::decide`], so
    /// the epoch loop performs no heap allocation once they have grown to the widest layer.
    /// Transient state, excluded from equality.
    scratch: MlpScratch,
}

impl PartialEq for DrmPolicy {
    fn eq(&self, other: &Self) -> bool {
        self.space == other.space
            && self.architecture == other.architecture
            && self.heads == other.heads
            && self.name == other.name
    }
}

impl DrmPolicy {
    /// Hard bound applied to every parameter when policies are created from search vectors:
    /// PaRMIS searches θ ∈ [−BOUND, BOUND]^d.
    pub const PARAMETER_BOUND: f64 = 3.0;

    /// Creates a policy with all parameters zero (every knob distribution uniform).
    pub fn zeros(space: &DecisionSpace, architecture: &PolicyArchitecture) -> Self {
        let cards = space.knob_cardinalities();
        let heads = head_output_dims(&cards)
            .iter()
            .map(|&out| Mlp::zeros(&architecture.layer_sizes(out)))
            .collect();
        DrmPolicy {
            space: space.clone(),
            architecture: architecture.clone(),
            heads,
            name: Arc::from("drm-policy"),
            scratch: MlpScratch::new(),
        }
    }

    /// Creates a policy with randomly initialized heads.
    pub fn random(space: &DecisionSpace, architecture: &PolicyArchitecture, seed: u64) -> Self {
        let cards = space.knob_cardinalities();
        let heads = head_output_dims(&cards)
            .iter()
            .enumerate()
            .map(|(i, &out)| {
                Mlp::random(
                    &architecture.layer_sizes(out),
                    seed.wrapping_add(i as u64 * 7919),
                )
            })
            .collect();
        DrmPolicy {
            space: space.clone(),
            architecture: architecture.clone(),
            heads,
            name: Arc::from("drm-policy"),
            scratch: MlpScratch::new(),
        }
    }

    /// Builds a policy from a flat parameter vector θ (clamped to
    /// [`PARAMETER_BOUND`](Self::PARAMETER_BOUND)).
    ///
    /// # Panics
    ///
    /// Panics if `theta.len()` differs from
    /// [`parameter_count_for`](Self::parameter_count_for).
    pub fn from_flat_parameters(
        space: &DecisionSpace,
        architecture: &PolicyArchitecture,
        theta: &[f64],
    ) -> Self {
        let mut policy = DrmPolicy::zeros(space, architecture);
        policy.set_flat_parameters(theta);
        policy
    }

    /// Number of parameters a policy of this architecture has on this decision space.
    pub fn parameter_count_for(space: &DecisionSpace, architecture: &PolicyArchitecture) -> usize {
        let cards = space.knob_cardinalities();
        head_output_dims(&cards)
            .iter()
            .map(|&out| Mlp::zeros(&architecture.layer_sizes(out)).parameter_count())
            .sum()
    }

    /// Total number of parameters across all four heads.
    pub fn parameter_count(&self) -> usize {
        self.heads.iter().map(Mlp::parameter_count).sum()
    }

    /// Approximate storage footprint of the policy in bytes, assuming 32-bit weights as the
    /// paper's user-space governor implementation uses (Table II reports ~1 KB per policy).
    pub fn storage_bytes(&self) -> usize {
        self.parameter_count() * std::mem::size_of::<f32>()
    }

    /// Flattens all four heads into a single θ vector (head order: Big cores, Little cores,
    /// Big frequency, Little frequency).
    pub fn to_flat_parameters(&self) -> Vec<f64> {
        let mut flat = Vec::with_capacity(self.parameter_count());
        for h in &self.heads {
            flat.extend(h.to_flat_parameters());
        }
        flat
    }

    /// Replaces all parameters from a flat θ vector, clamping every entry to
    /// ±[`PARAMETER_BOUND`](Self::PARAMETER_BOUND).
    ///
    /// # Panics
    ///
    /// Panics if `theta.len()` differs from [`parameter_count`](Self::parameter_count).
    pub fn set_flat_parameters(&mut self, theta: &[f64]) {
        assert_eq!(
            theta.len(),
            self.parameter_count(),
            "theta has the wrong length"
        );
        let mut offset = 0;
        for h in &mut self.heads {
            let n = h.parameter_count();
            let clamped: Vec<f64> = theta[offset..offset + n]
                .iter()
                .map(|v| v.clamp(-Self::PARAMETER_BOUND, Self::PARAMETER_BOUND))
                .collect();
            h.set_flat_parameters(&clamped);
            offset += n;
        }
    }

    /// The decision space this policy acts on.
    pub fn decision_space(&self) -> &DecisionSpace {
        &self.space
    }

    /// The shared head architecture.
    pub fn architecture(&self) -> &PolicyArchitecture {
        &self.architecture
    }

    /// Mutable access to one head (used by the imitation-learning trainer).
    pub fn head_mut(&mut self, knob: Knob) -> &mut Mlp {
        &mut self.heads[knob_index(knob)]
    }

    /// Read-only access to one head.
    pub fn head(&self, knob: Knob) -> &Mlp {
        &self.heads[knob_index(knob)]
    }

    /// Sets the controller name used in run reports.
    pub fn with_name(mut self, name: impl Into<Arc<str>>) -> Self {
        self.name = name.into();
        self
    }

    /// Computes the per-knob action indices for a feature vector (greedy argmax per head).
    ///
    /// One [`MlpScratch`] is shared across the four heads, so per-decision inference costs
    /// two small buffer allocations instead of the ~9 per head the naive forward pass made.
    pub fn decide_indices(&self, features: &[f64]) -> [usize; 4] {
        let mut scratch = MlpScratch::new();
        let mut indices = [0usize; 4];
        for (i, head) in self.heads.iter().enumerate() {
            indices[i] = head.predict_class_with(features, &mut scratch);
        }
        indices
    }

    /// Computes the decision for a raw counter snapshot.
    pub fn decide_for_counters(&self, counters: &CounterSnapshot) -> DrmDecision {
        let features = policy_feature_array(counters);
        let indices = self.decide_indices(&features);
        self.space.decision_from_knob_indices(indices)
    }
}

impl DrmController for DrmPolicy {
    fn decide(&mut self, counters: &CounterSnapshot, _previous: &DrmDecision) -> DrmDecision {
        // Same computation as `decide_for_counters`, but through the policy-owned scratch:
        // the `&mut self` of the controller interface is what makes the per-epoch forward
        // passes allocation-free.
        let features = policy_feature_array(counters);
        let mut indices = [0usize; 4];
        for (i, head) in self.heads.iter().enumerate() {
            indices[i] = head.predict_class_with(&features, &mut self.scratch);
        }
        self.space.decision_from_knob_indices(indices)
    }

    fn name(&self) -> &str {
        &self.name
    }

    /// The policy's name is already shared, so stamping it into a run summary is a
    /// refcount bump rather than a fresh allocation per evaluation run.
    fn shared_name(&self) -> Arc<str> {
        self.name.clone()
    }
}

fn knob_index(knob: Knob) -> usize {
    match knob {
        Knob::BigCores => 0,
        Knob::LittleCores => 1,
        Knob::BigFrequency => 2,
        Knob::LittleFrequency => 3,
    }
}

fn head_output_dims(cards: &KnobCardinalities) -> [usize; 4] {
    cards.as_array()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_sim::apps::Benchmark;
    use soc_sim::platform::Platform;

    fn space() -> DecisionSpace {
        DecisionSpace::exynos5422()
    }

    #[test]
    fn parameter_count_is_consistent_across_constructors() {
        let arch = PolicyArchitecture::paper_default();
        let s = space();
        let zero = DrmPolicy::zeros(&s, &arch);
        let rand = DrmPolicy::random(&s, &arch, 5);
        assert_eq!(zero.parameter_count(), rand.parameter_count());
        assert_eq!(
            zero.parameter_count(),
            DrmPolicy::parameter_count_for(&s, &arch)
        );
        // Four heads with outputs 5, 4, 19, 13 over a 9-input, [5,4]-hidden network.
        let expect: usize = [5usize, 4, 19, 13]
            .iter()
            .map(|&out| (9 * 5 + 5) + (5 * 4 + 4) + (4 * out + out))
            .sum();
        assert_eq!(zero.parameter_count(), expect);
    }

    #[test]
    fn storage_footprint_is_around_one_kilobyte() {
        let policy = DrmPolicy::zeros(&space(), &PolicyArchitecture::paper_default());
        let kb = policy.storage_bytes() as f64 / 1024.0;
        assert!(
            kb > 0.5 && kb < 4.0,
            "storage {kb} KiB outside the expected ballpark"
        );
    }

    #[test]
    fn flat_parameter_roundtrip_preserves_decisions() {
        let arch = PolicyArchitecture::paper_default();
        let s = space();
        let policy = DrmPolicy::random(&s, &arch, 11);
        let theta = policy.to_flat_parameters();
        let rebuilt = DrmPolicy::from_flat_parameters(&s, &arch, &theta);
        let counters = CounterSnapshot {
            instructions_retired: 5e7,
            cpu_cycles: 1.2e8,
            branch_mispredictions: 2e5,
            l2_cache_misses: 4e5,
            data_memory_accesses: 1.5e7,
            noncache_external_requests: 3e5,
            little_cluster_utilization_sum: 1.5,
            big_cluster_utilization_per_core: 0.6,
            total_chip_power_w: 2.5,
        };
        assert_eq!(
            policy.decide_for_counters(&counters),
            rebuilt.decide_for_counters(&counters)
        );
    }

    #[test]
    fn set_flat_parameters_clamps_to_bound() {
        let arch = PolicyArchitecture::paper_default();
        let s = space();
        let mut policy = DrmPolicy::zeros(&s, &arch);
        let n = policy.parameter_count();
        policy.set_flat_parameters(&vec![100.0; n]);
        assert!(policy
            .to_flat_parameters()
            .iter()
            .all(|&v| v <= DrmPolicy::PARAMETER_BOUND));
    }

    #[test]
    fn decisions_are_always_valid() {
        let arch = PolicyArchitecture::paper_default();
        let s = space();
        for seed in 0..20 {
            let policy = DrmPolicy::random(&s, &arch, seed);
            let counters = CounterSnapshot::zeroed();
            let d = policy.decide_for_counters(&counters);
            assert!(
                s.validate(&d).is_ok(),
                "random policy produced invalid decision {d}"
            );
        }
    }

    #[test]
    fn different_parameters_produce_different_behaviour() {
        let arch = PolicyArchitecture::paper_default();
        let s = space();
        let platform = Platform::odroid_xu3();
        let app = Benchmark::Fft.application();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..8 {
            let mut policy = DrmPolicy::random(&s, &arch, seed * 31 + 1);
            let summary = platform.run_application(&app, &mut policy, 0).unwrap();
            seen.insert(format!("{:.4}", summary.execution_time_s));
        }
        assert!(
            seen.len() >= 3,
            "random policies should induce diverse execution times, got {seen:?}"
        );
    }

    #[test]
    fn policy_acts_as_a_controller() {
        let arch = PolicyArchitecture::paper_default();
        let s = space();
        let platform = Platform::odroid_xu3();
        let mut policy = DrmPolicy::random(&s, &arch, 3).with_name("parmis-candidate");
        let summary = platform
            .run_application(&Benchmark::Qsort.application(), &mut policy, 1)
            .unwrap();
        assert_eq!(&*summary.controller, "parmis-candidate");
        assert!(summary.execution_time_s > 0.0);
        // Every epoch decision stayed inside the decision space (run_application validates).
        assert_eq!(
            summary.epochs.len(),
            Benchmark::Qsort.application().epoch_count()
        );
    }

    #[test]
    fn heads_are_individually_addressable() {
        let arch = PolicyArchitecture::paper_default();
        let s = space();
        let mut policy = DrmPolicy::zeros(&s, &arch);
        assert_eq!(policy.head(Knob::BigCores).output_dim(), 5);
        assert_eq!(policy.head(Knob::LittleCores).output_dim(), 4);
        assert_eq!(policy.head(Knob::BigFrequency).output_dim(), 19);
        assert_eq!(policy.head(Knob::LittleFrequency).output_dim(), 13);
        // Mutating a head changes the flat parameter vector.
        let before = policy.to_flat_parameters();
        policy
            .head_mut(Knob::BigFrequency)
            .sgd_step(&[0.1; 9], 3, 0.5);
        assert_ne!(before, policy.to_flat_parameters());
        assert_eq!(Knob::ALL.len(), 4);
    }
}
