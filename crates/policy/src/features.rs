//! Feature pipeline from hardware counters to policy inputs.
//!
//! All learned controllers (PaRMIS, RL, IL) consume the same normalized nine-dimensional
//! feature vector derived from [`soc_sim::CounterSnapshot`] (Table I of the paper). Keeping
//! the pipeline in one place guarantees the "same MLP function with different parameters"
//! property the paper relies on when comparing implementation overheads (§V-F).

use soc_sim::counters::{CounterSnapshot, FEATURE_COUNT};

/// Number of inputs every policy network receives.
pub const POLICY_INPUT_DIM: usize = FEATURE_COUNT;

/// Converts a counter snapshot into the normalized feature vector fed to policy networks.
///
/// # Examples
///
/// ```
/// use policy::features::{policy_features, POLICY_INPUT_DIM};
/// use soc_sim::CounterSnapshot;
///
/// let f = policy_features(&CounterSnapshot::zeroed());
/// assert_eq!(f.len(), POLICY_INPUT_DIM);
/// assert!(f.iter().all(|&v| v == 0.0));
/// ```
pub fn policy_features(counters: &CounterSnapshot) -> Vec<f64> {
    policy_feature_array(counters).to_vec()
}

/// Array form of [`policy_features`]: the same normalized feature vector without the heap
/// allocation (the per-epoch policy hot path calls this once per decision).
pub fn policy_feature_array(counters: &CounterSnapshot) -> [f64; POLICY_INPUT_DIM] {
    counters.to_normalized_features()
}

/// Derived (per-instruction) statistics occasionally useful for diagnostics and for the RL
/// baseline's compact state discretization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedRates {
    /// Cycles per instruction observed in the epoch (0 when no instructions retired).
    pub cpi: f64,
    /// L2 misses per kilo-instruction.
    pub mpki: f64,
    /// Branch mispredictions per kilo-instruction.
    pub branch_mpki: f64,
    /// Memory accesses per instruction.
    pub memory_intensity: f64,
}

impl DerivedRates {
    /// Computes the derived rates from a counter snapshot.
    pub fn from_counters(counters: &CounterSnapshot) -> Self {
        let instr = counters.instructions_retired;
        if instr <= 0.0 {
            return DerivedRates {
                cpi: 0.0,
                mpki: 0.0,
                branch_mpki: 0.0,
                memory_intensity: 0.0,
            };
        }
        DerivedRates {
            cpi: counters.cpu_cycles / instr,
            mpki: counters.l2_cache_misses / instr * 1000.0,
            branch_mpki: counters.branch_mispredictions / instr * 1000.0,
            memory_intensity: counters.data_memory_accesses / instr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> CounterSnapshot {
        CounterSnapshot {
            instructions_retired: 100e6,
            cpu_cycles: 250e6,
            branch_mispredictions: 0.5e6,
            l2_cache_misses: 1.2e6,
            data_memory_accesses: 30e6,
            noncache_external_requests: 1.0e6,
            little_cluster_utilization_sum: 2.0,
            big_cluster_utilization_per_core: 0.7,
            total_chip_power_w: 3.5,
        }
    }

    #[test]
    fn policy_features_have_fixed_dimension_and_are_finite() {
        let f = policy_features(&snapshot());
        assert_eq!(f.len(), POLICY_INPUT_DIM);
        assert!(f.iter().all(|v| v.is_finite()));
        assert!(f.iter().all(|&v| (0.0..=2.5).contains(&v)));
    }

    #[test]
    fn derived_rates_match_hand_computation() {
        let r = DerivedRates::from_counters(&snapshot());
        assert!((r.cpi - 2.5).abs() < 1e-12);
        assert!((r.mpki - 12.0).abs() < 1e-12);
        assert!((r.branch_mpki - 5.0).abs() < 1e-12);
        assert!((r.memory_intensity - 0.3).abs() < 1e-12);
    }

    #[test]
    fn derived_rates_handle_empty_epoch() {
        let r = DerivedRates::from_counters(&CounterSnapshot::zeroed());
        assert_eq!(r.cpi, 0.0);
        assert_eq!(r.mpki, 0.0);
        assert_eq!(r.branch_mpki, 0.0);
        assert_eq!(r.memory_intensity, 0.0);
    }
}
