//! A small feed-forward multi-layer perceptron with ReLU hidden activations and a softmax
//! output layer, matching the policy representation of the paper (§V-A): "two hidden layers
//! with the ReLU activation and an output layer with the softmax activation".
//!
//! The network is deliberately minimal: dense layers, forward pass, flat-parameter
//! round-tripping (needed by PaRMIS, which searches the parameter space directly) and the
//! gradient computation needed by the imitation-learning trainer.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// A dense feed-forward network: `input -> hidden (ReLU) ... -> output (softmax)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    /// Sizes of every layer, input first, output last.
    layer_sizes: Vec<usize>,
    /// Weight matrices stored row-major; `weights[l]` has shape `(sizes[l+1], sizes[l])`.
    weights: Vec<Vec<f64>>,
    /// Bias vectors; `biases[l]` has length `sizes[l+1]`.
    biases: Vec<Vec<f64>>,
}

impl Mlp {
    /// Creates a network with the given layer sizes and all parameters zero.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two layer sizes are supplied or any size is zero.
    pub fn zeros(layer_sizes: &[usize]) -> Self {
        assert!(
            layer_sizes.len() >= 2,
            "an MLP needs at least an input and an output layer"
        );
        assert!(
            layer_sizes.iter().all(|&s| s > 0),
            "layer sizes must be positive"
        );
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in layer_sizes.windows(2) {
            weights.push(vec![0.0; w[0] * w[1]]);
            biases.push(vec![0.0; w[1]]);
        }
        Mlp {
            layer_sizes: layer_sizes.to_vec(),
            weights,
            biases,
        }
    }

    /// Creates a network with He-style random initialization.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`zeros`](Self::zeros).
    pub fn random(layer_sizes: &[usize], seed: u64) -> Self {
        let mut mlp = Mlp::zeros(layer_sizes);
        let mut rng = StdRng::seed_from_u64(seed);
        for (l, w) in mlp.weights.iter_mut().enumerate() {
            let fan_in = layer_sizes[l] as f64;
            let std = (2.0 / fan_in).sqrt();
            let dist = Normal::new(0.0, std).expect("valid normal");
            for v in w.iter_mut() {
                *v = dist.sample(&mut rng);
            }
        }
        mlp
    }

    /// Layer sizes, input first.
    pub fn layer_sizes(&self) -> &[usize] {
        &self.layer_sizes
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layer_sizes[0]
    }

    /// Output dimensionality (number of softmax classes).
    pub fn output_dim(&self) -> usize {
        *self.layer_sizes.last().expect("at least two layers")
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weights.iter().map(Vec::len).sum::<usize>()
            + self.biases.iter().map(Vec::len).sum::<usize>()
    }

    /// Flattens all parameters into a single vector (weights then biases, layer by layer).
    pub fn to_flat_parameters(&self) -> Vec<f64> {
        let mut flat = Vec::with_capacity(self.parameter_count());
        for (w, b) in self.weights.iter().zip(&self.biases) {
            flat.extend_from_slice(w);
            flat.extend_from_slice(b);
        }
        flat
    }

    /// Replaces all parameters from a flat vector produced by
    /// [`to_flat_parameters`](Self::to_flat_parameters).
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` differs from [`parameter_count`](Self::parameter_count).
    pub fn set_flat_parameters(&mut self, flat: &[f64]) {
        assert_eq!(
            flat.len(),
            self.parameter_count(),
            "flat parameter vector has the wrong length"
        );
        let mut offset = 0;
        for (w, b) in self.weights.iter_mut().zip(&mut self.biases) {
            let w_len = w.len();
            w.copy_from_slice(&flat[offset..offset + w_len]);
            offset += w_len;
            let b_len = b.len();
            b.copy_from_slice(&flat[offset..offset + b_len]);
            offset += b_len;
        }
    }

    /// Builds a network of the given shape directly from a flat parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector length does not match the architecture.
    pub fn from_flat_parameters(layer_sizes: &[usize], flat: &[f64]) -> Self {
        let mut mlp = Mlp::zeros(layer_sizes);
        mlp.set_flat_parameters(flat);
        mlp
    }

    /// Forward pass returning the softmax class probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the input dimensionality.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        softmax(&self.logits(input))
    }

    /// Forward pass returning the raw (pre-softmax) output logits.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the input dimensionality.
    pub fn logits(&self, input: &[f64]) -> Vec<f64> {
        self.forward_trace(input).logits
    }

    /// The index of the most probable class for `input`.
    pub fn predict_class(&self, input: &[f64]) -> usize {
        self.predict_class_with(input, &mut MlpScratch::default())
    }

    /// [`predict_class`](Self::predict_class) through a caller-owned [`MlpScratch`]: the
    /// forward pass ping-pongs between the scratch's two buffers instead of allocating
    /// per-layer vectors and an activation trace, so repeated inference (four heads per
    /// decision epoch on the policy hot path) performs no heap allocation once the scratch
    /// has grown to the widest layer. Bit-identical to `predict_class`: the layer loops,
    /// the softmax (including its degenerate-sum uniform fallback) and the last-maximum
    /// argmax reproduce the allocating path's float operations in the same order.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the input dimensionality.
    pub fn predict_class_with(&self, input: &[f64], scratch: &mut MlpScratch) -> usize {
        assert_eq!(
            input.len(),
            self.input_dim(),
            "input has wrong dimensionality"
        );
        let MlpScratch { a, b } = scratch;
        a.clear();
        a.extend_from_slice(input);
        let last = self.weights.len() - 1;
        for (l, (w, bias)) in self.weights.iter().zip(&self.biases).enumerate() {
            let rows = self.layer_sizes[l + 1];
            let cols = self.layer_sizes[l];
            b.clear();
            b.resize(rows, 0.0);
            for r in 0..rows {
                let mut acc = bias[r];
                let row = &w[r * cols..(r + 1) * cols];
                for (x, wv) in a.iter().zip(row) {
                    acc += x * wv;
                }
                b[r] = acc;
            }
            if l != last {
                for v in b.iter_mut() {
                    *v = v.max(0.0); // ReLU
                }
            }
            std::mem::swap(a, b);
        }
        // In-place softmax with `softmax`'s exact operation order, then its argmax.
        let max = a.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for v in a.iter_mut() {
            *v = (*v - max).exp();
        }
        let sum: f64 = a.iter().sum();
        if sum <= 0.0 || !sum.is_finite() {
            let uniform = 1.0 / a.len() as f64;
            for v in a.iter_mut() {
                *v = uniform;
            }
        } else {
            for v in a.iter_mut() {
                *v /= sum;
            }
        }
        a.iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Forward pass that keeps the per-layer activations (needed for backpropagation).
    fn forward_trace(&self, input: &[f64]) -> ForwardTrace {
        assert_eq!(
            input.len(),
            self.input_dim(),
            "input has wrong dimensionality"
        );
        let mut activations = vec![input.to_vec()];
        let mut current = input.to_vec();
        let last = self.weights.len() - 1;
        for (l, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let rows = self.layer_sizes[l + 1];
            let cols = self.layer_sizes[l];
            let mut next = vec![0.0; rows];
            for r in 0..rows {
                let mut acc = b[r];
                let row = &w[r * cols..(r + 1) * cols];
                for (x, wv) in current.iter().zip(row) {
                    acc += x * wv;
                }
                next[r] = acc;
            }
            if l != last {
                for v in next.iter_mut() {
                    *v = v.max(0.0); // ReLU
                }
                activations.push(next.clone());
            }
            current = next;
        }
        ForwardTrace {
            activations,
            logits: current,
        }
    }

    /// One step of stochastic gradient descent on the cross-entropy loss for a single
    /// `(input, target_class)` example. Returns the loss before the update.
    ///
    /// Used by the imitation-learning baseline to mimic oracle decisions.
    ///
    /// # Panics
    ///
    /// Panics if `target_class >= output_dim()` or the input dimension is wrong.
    pub fn sgd_step(&mut self, input: &[f64], target_class: usize, learning_rate: f64) -> f64 {
        assert!(
            target_class < self.output_dim(),
            "target class {target_class} out of range"
        );
        let trace = self.forward_trace(input);
        let probs = softmax(&trace.logits);
        let loss = -(probs[target_class].max(1e-12)).ln();

        // Output-layer error: softmax + cross-entropy gives (p - onehot).
        let mut delta: Vec<f64> = probs;
        delta[target_class] -= 1.0;

        // Backpropagate layer by layer.
        for l in (0..self.weights.len()).rev() {
            let rows = self.layer_sizes[l + 1];
            let cols = self.layer_sizes[l];
            let activation = &trace.activations[l];
            // Gradient w.r.t. the previous layer's activations (before applying ReLU mask).
            let mut prev_delta = vec![0.0; cols];
            {
                let w = &self.weights[l];
                for r in 0..rows {
                    let row = &w[r * cols..(r + 1) * cols];
                    for c in 0..cols {
                        prev_delta[c] += row[c] * delta[r];
                    }
                }
            }
            // Parameter update.
            {
                let w = &mut self.weights[l];
                let b = &mut self.biases[l];
                for r in 0..rows {
                    let row = &mut w[r * cols..(r + 1) * cols];
                    for c in 0..cols {
                        row[c] -= learning_rate * delta[r] * activation[c];
                    }
                    b[r] -= learning_rate * delta[r];
                }
            }
            if l > 0 {
                // Apply the ReLU derivative of the hidden activation.
                for (d, a) in prev_delta.iter_mut().zip(&trace.activations[l]) {
                    if *a <= 0.0 {
                        *d = 0.0;
                    }
                }
                delta = prev_delta;
            }
        }
        loss
    }
}

struct ForwardTrace {
    /// Post-activation values of the input and every hidden layer.
    activations: Vec<Vec<f64>>,
    /// Raw output logits.
    logits: Vec<f64>,
}

/// Reusable forward-pass buffers for [`Mlp::predict_class_with`]: two ping-pong activation
/// vectors that grow to the widest layer once and are then reused allocation-free across
/// heads and epochs.
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    a: Vec<f64>,
    b: Vec<f64>,
}

impl MlpScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        MlpScratch::default()
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        return vec![1.0 / logits.len() as f64; logits.len()];
    }
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_matches_architecture() {
        // 9 inputs, two hidden layers of 8, 5 outputs:
        // (9*8 + 8) + (8*8 + 8) + (8*5 + 5) = 80 + 72 + 45 = 197.
        let mlp = Mlp::zeros(&[9, 8, 8, 5]);
        assert_eq!(mlp.parameter_count(), 197);
        assert_eq!(mlp.input_dim(), 9);
        assert_eq!(mlp.output_dim(), 5);
        assert_eq!(mlp.layer_sizes(), &[9, 8, 8, 5]);
    }

    #[test]
    fn flat_parameter_roundtrip() {
        let mlp = Mlp::random(&[4, 6, 3], 11);
        let flat = mlp.to_flat_parameters();
        assert_eq!(flat.len(), mlp.parameter_count());
        let rebuilt = Mlp::from_flat_parameters(&[4, 6, 3], &flat);
        assert_eq!(rebuilt, mlp);
        // Perturbing one parameter changes the output.
        let mut perturbed = flat.clone();
        perturbed[0] += 5.0;
        let other = Mlp::from_flat_parameters(&[4, 6, 3], &perturbed);
        assert_ne!(
            other.forward(&[1.0, 0.5, -0.5, 2.0]),
            mlp.forward(&[1.0, 0.5, -0.5, 2.0])
        );
    }

    #[test]
    #[should_panic]
    fn set_flat_parameters_rejects_wrong_length() {
        let mut mlp = Mlp::zeros(&[2, 2]);
        mlp.set_flat_parameters(&[1.0]);
    }

    #[test]
    fn softmax_output_is_a_distribution() {
        let mlp = Mlp::random(&[9, 8, 8, 4], 3);
        let input: Vec<f64> = (0..9).map(|i| i as f64 * 0.1).collect();
        let probs = mlp.forward(&input);
        assert_eq!(probs.len(), 4);
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert!(mlp.predict_class(&input) < 4);
    }

    #[test]
    fn zero_network_is_uniform() {
        let mlp = Mlp::zeros(&[3, 4, 5]);
        let probs = mlp.forward(&[1.0, -2.0, 0.5]);
        for p in probs {
            assert!((p - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn random_networks_differ_across_seeds_but_not_within() {
        let a = Mlp::random(&[5, 6, 2], 1);
        let b = Mlp::random(&[5, 6, 2], 1);
        let c = Mlp::random(&[5, 6, 2], 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn scratch_prediction_matches_the_allocating_forward_pass() {
        // The scratch path must agree with softmax(forward) + last-maximum argmax for
        // random networks and inputs, including when the scratch is reused across networks
        // of different widths (the four policy heads share one scratch).
        let mut scratch = MlpScratch::new();
        for seed in 0..20 {
            for sizes in [&[9usize, 5, 4, 19][..], &[9, 5, 4, 13], &[3, 4], &[2, 8, 2]] {
                let mlp = Mlp::random(sizes, seed);
                let input: Vec<f64> = (0..sizes[0]).map(|i| (i as f64 - 1.3) * 0.7).collect();
                let probs = mlp.forward(&input);
                let reference = probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                assert_eq!(mlp.predict_class_with(&input, &mut scratch), reference);
                assert_eq!(mlp.predict_class(&input), reference);
            }
        }
        // Degenerate softmax (all-equal logits) keeps the allocating path's tie behaviour.
        let zero = Mlp::zeros(&[3, 4]);
        assert_eq!(zero.predict_class_with(&[0.5, -0.5, 1.0], &mut scratch), 3);
        assert_eq!(zero.predict_class(&[0.5, -0.5, 1.0]), 3);
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let p = softmax(&[1000.0, -1000.0, 0.0]);
        assert!((p[0] - 1.0).abs() < 1e-9);
        assert!(p[1] < 1e-9);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sgd_learns_a_simple_mapping() {
        // Two clusters in 2-D: class 0 when x0 > x1, class 1 otherwise.
        let mut mlp = Mlp::random(&[2, 8, 2], 42);
        let examples: Vec<(Vec<f64>, usize)> = vec![
            (vec![1.0, 0.0], 0),
            (vec![0.8, 0.2], 0),
            (vec![0.9, -0.5], 0),
            (vec![0.2, 0.9], 1),
            (vec![0.0, 1.0], 1),
            (vec![-0.3, 0.4], 1),
        ];
        let mut last_avg = f64::INFINITY;
        for epoch in 0..300 {
            let mut total = 0.0;
            for (x, y) in &examples {
                total += mlp.sgd_step(x, *y, 0.1);
            }
            let avg = total / examples.len() as f64;
            if epoch == 0 {
                last_avg = avg;
            }
        }
        // Loss decreased substantially and classification is perfect.
        let final_loss: f64 = examples
            .iter()
            .map(|(x, y)| {
                let p = mlp.forward(x);
                -(p[*y].max(1e-12)).ln()
            })
            .sum::<f64>()
            / examples.len() as f64;
        assert!(
            final_loss < last_avg * 0.5,
            "loss {final_loss} vs initial {last_avg}"
        );
        for (x, y) in &examples {
            assert_eq!(mlp.predict_class(x), *y);
        }
    }

    #[test]
    fn sgd_step_returns_positive_loss_and_respects_bounds() {
        let mut mlp = Mlp::random(&[3, 4, 3], 9);
        let loss = mlp.sgd_step(&[0.1, 0.2, 0.3], 2, 0.01);
        assert!(loss > 0.0);
    }

    #[test]
    #[should_panic]
    fn sgd_step_rejects_bad_class() {
        let mut mlp = Mlp::random(&[3, 4, 3], 9);
        mlp.sgd_step(&[0.1, 0.2, 0.3], 7, 0.01);
    }

    #[test]
    #[should_panic]
    fn forward_rejects_wrong_input_size() {
        let mlp = Mlp::zeros(&[3, 2]);
        mlp.forward(&[1.0]);
    }

    #[test]
    #[should_panic]
    fn zero_layer_size_rejected() {
        Mlp::zeros(&[3, 0, 2]);
    }
}
