//! Scalarization sweeps and governor evaluation: building the baseline Pareto fronts the
//! paper's figures compare PaRMIS against.
//!
//! RL and IL optimize a *fixed* linear combination of execution time and energy; to obtain a
//! Pareto front they must be re-run over a sweep of scalarization weights (§V-B). The paper
//! also reuses those very policies when evaluating the PPW objective, because neither method
//! can be trained for PPW directly (§V-E) — so evaluation objectives are decoupled from the
//! training scalarization here.

use crate::il::{train_il_policy, IlConfig};
use crate::rl::{train_q_policy, RlConfig};
use moo::scalarize::WeightVector;
use moo::ParetoFront;
use parmis::objective::{objective_vector, Objective};
use parmis::parallel::parallel_map;
use soc_sim::apps::Benchmark;
use soc_sim::governor::default_governors;
use soc_sim::platform::{DrmController, Platform};
use soc_sim::workload::Application;

/// Configuration of a baseline sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Number of scalarization weight vectors to sweep (evenly spaced on the 2-simplex).
    pub weight_count: usize,
    /// RL training hyperparameters.
    pub rl: RlConfig,
    /// IL training hyperparameters.
    pub il: IlConfig,
    /// Measurement-noise seed used for the final evaluation runs.
    pub eval_seed: u64,
    /// Worker threads the sweep arms are trained on (`0` = one per available CPU). Each arm
    /// derives its own training seed from the arm index, and arm results are merged into the
    /// Pareto archive in arm order, so the resulting front does not depend on this knob.
    pub num_workers: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            weight_count: 7,
            rl: RlConfig::default(),
            il: IlConfig::default(),
            eval_seed: 29,
            num_workers: 1,
        }
    }
}

/// Evaluates one controller on one application, returning the minimization objective vector.
pub fn evaluate_controller(
    platform: &Platform,
    app: &Application,
    controller: &mut dyn DrmController,
    objectives: &[Objective],
    seed: u64,
) -> Vec<f64> {
    let summary = platform
        .run_application(app, controller, seed)
        .expect("controllers under evaluation only emit valid decisions");
    objective_vector(objectives, &summary)
}

/// Evaluates the four stock governors on a benchmark.
///
/// Returns `(governor name, minimization objective vector)` for ondemand, interactive,
/// performance and powersave — the single trade-off points shown in Figs. 3 and 6.
pub fn governor_results(benchmark: Benchmark, objectives: &[Objective]) -> Vec<(String, Vec<f64>)> {
    let platform = Platform::odroid_xu3();
    let app = benchmark.application();
    default_governors(platform.spec())
        .into_iter()
        .map(|mut governor| {
            let values = evaluate_controller(&platform, &app, &mut governor, objectives, 29);
            (governor.name().to_string(), values)
        })
        .collect()
}

/// Trains the RL baseline across a scalarization sweep and returns its Pareto front on the
/// requested evaluation objectives. The front's tags name the scalarization that produced
/// each surviving policy.
pub fn rl_front(
    benchmark: Benchmark,
    objectives: &[Objective],
    config: &SweepConfig,
) -> ParetoFront<String> {
    let platform = Platform::odroid_xu3();
    let app = benchmark.application();
    let weights = WeightVector::sweep_2d(config.weight_count);
    // Train the scalarization arms in parallel: each arm's seed derives from its index, and
    // parallel_map returns arm results in arm order, so the merged front is identical for
    // any worker count.
    let arms = parallel_map(&weights, config.num_workers, |i, arm_weights| {
        let mut rl_config = config.rl.clone();
        rl_config.seed = config.rl.seed.wrapping_add(i as u64 * 13);
        let mut policy = train_q_policy(&platform, &app, arm_weights, &rl_config);
        let values =
            evaluate_controller(&platform, &app, &mut policy, objectives, config.eval_seed);
        (values, policy.name().to_string())
    });
    let mut front = ParetoFront::new(objectives.len());
    for (values, name) in arms {
        front.insert(values, name);
    }
    front
}

/// Trains the IL baseline across a scalarization sweep and returns its Pareto front on the
/// requested evaluation objectives. Arms run in parallel exactly like [`rl_front`].
pub fn il_front(
    benchmark: Benchmark,
    objectives: &[Objective],
    config: &SweepConfig,
) -> ParetoFront<String> {
    let platform = Platform::odroid_xu3();
    let app = benchmark.application();
    let weights = WeightVector::sweep_2d(config.weight_count);
    let arms = parallel_map(&weights, config.num_workers, |i, arm_weights| {
        let mut il_config = config.il.clone();
        il_config.seed = config.il.seed.wrapping_add(i as u64 * 7);
        let mut outcome = train_il_policy(&platform, &app, arm_weights, &il_config);
        let values = evaluate_controller(
            &platform,
            &app,
            &mut outcome.policy,
            objectives,
            config.eval_seed,
        );
        (values, outcome.policy.name().to_string())
    });
    let mut front = ParetoFront::new(objectives.len());
    for (values, name) in arms {
        front.insert(values, name);
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> SweepConfig {
        SweepConfig {
            weight_count: 3,
            rl: RlConfig {
                episodes: 4,
                ..Default::default()
            },
            il: IlConfig {
                oracle_stride: 113,
                training: policy::training::TrainingConfig {
                    epochs: 10,
                    learning_rate: 0.08,
                    seed: 1,
                },
                ..Default::default()
            },
            eval_seed: 5,
            num_workers: 1,
        }
    }

    #[test]
    fn governor_results_cover_the_four_defaults() {
        let results = governor_results(Benchmark::Qsort, &Objective::TIME_ENERGY);
        let names: Vec<&str> = results.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["ondemand", "interactive", "performance", "powersave"]
        );
        for (_, v) in &results {
            assert_eq!(v.len(), 2);
            assert!(v.iter().all(|x| *x > 0.0));
        }
        // performance governor is the fastest of the four; powersave draws the least energy
        // per unit time but takes much longer.
        let time_of = |name: &str| {
            results
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v[0])
                .unwrap()
        };
        assert!(time_of("performance") < time_of("powersave"));
        assert!(time_of("ondemand") < time_of("powersave"));
    }

    #[test]
    fn rl_sweep_produces_a_valid_front() {
        let front = rl_front(Benchmark::Blowfish, &Objective::TIME_ENERGY, &tiny_sweep());
        assert!(!front.is_empty());
        assert!(front.len() <= 3);
        for entry in front.iter() {
            assert!(entry.tag.starts_with("rl-"));
            assert_eq!(entry.objectives.len(), 2);
        }
    }

    #[test]
    fn il_sweep_produces_a_valid_front() {
        let front = il_front(Benchmark::Sha, &Objective::TIME_ENERGY, &tiny_sweep());
        assert!(!front.is_empty());
        for entry in front.iter() {
            assert!(entry.tag.starts_with("il-"));
        }
    }

    #[test]
    fn sweep_fronts_are_identical_for_any_worker_count() {
        let serial = tiny_sweep();
        for workers in [2, 4] {
            let parallel = SweepConfig {
                num_workers: workers,
                ..tiny_sweep()
            };
            let a = rl_front(Benchmark::Qsort, &Objective::TIME_ENERGY, &serial);
            let b = rl_front(Benchmark::Qsort, &Objective::TIME_ENERGY, &parallel);
            assert_eq!(
                a.objective_values(),
                b.objective_values(),
                "rl, workers = {workers}"
            );
            let a = il_front(Benchmark::Qsort, &Objective::TIME_ENERGY, &serial);
            let b = il_front(Benchmark::Qsort, &Objective::TIME_ENERGY, &parallel);
            assert_eq!(
                a.objective_values(),
                b.objective_values(),
                "il, workers = {workers}"
            );
        }
    }

    #[test]
    fn sweeps_can_be_scored_on_ppw_objectives() {
        // The paper reuses the energy/time-trained baselines for the PPW evaluation; the
        // resulting objective vectors must follow the minimization convention (negated PPW).
        let front = rl_front(Benchmark::Basicmath, &Objective::TIME_PPW, &tiny_sweep());
        for entry in front.iter() {
            assert!(entry.objectives[0] > 0.0);
            assert!(entry.objectives[1] < 0.0);
        }
    }
}
