//! Scalarized reinforcement-learning baseline.
//!
//! Prior RL work on DRM (Chen et al., Kim et al. — references \[2\], \[10\] of the paper) defines
//! a per-epoch reward for each objective and optimizes a linear combination
//! `R = Σ λ_i R(O_i)`. This module reproduces that recipe with per-knob tabular Q-learning
//! agents over a coarse discretization of the Table-I counters. Tracing a Pareto front
//! requires re-training under many scalarization vectors, which is precisely the drawback the
//! paper highlights.

use moo::scalarize::WeightVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soc_sim::config::{DecisionSpace, DrmDecision, KnobCardinalities};
use soc_sim::counters::CounterSnapshot;
use soc_sim::platform::{DrmController, Platform};
use soc_sim::workload::Application;

/// Hyperparameters of the Q-learning baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct RlConfig {
    /// Number of training episodes (full passes over the application).
    pub episodes: usize,
    /// Q-learning step size α.
    pub learning_rate: f64,
    /// Discount factor γ.
    pub discount: f64,
    /// Initial exploration rate ε (decayed linearly to `epsilon_final`).
    pub epsilon_start: f64,
    /// Final exploration rate.
    pub epsilon_final: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RlConfig {
    fn default() -> Self {
        RlConfig {
            episodes: 30,
            learning_rate: 0.25,
            discount: 0.6,
            epsilon_start: 0.5,
            epsilon_final: 0.02,
            seed: 0xFEED,
        }
    }
}

/// Coarse discretization of the counter features into a tabular state index.
///
/// Buckets: Big-cluster load (4) × Little-cluster load (4) × memory intensity (3) × CPI (3),
/// giving 144 states — small enough for tabular learning in a few dozen episodes, rich enough
/// to distinguish the phases the synthetic benchmarks expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateEncoder;

impl StateEncoder {
    /// Total number of discrete states.
    pub const NUM_STATES: usize = 4 * 4 * 3 * 3;

    /// Encodes a counter snapshot into a state index in `[0, NUM_STATES)`.
    pub fn encode(&self, counters: &CounterSnapshot) -> usize {
        let big = bucket(counters.big_cluster_utilization_per_core, 1.0, 4);
        let little = bucket(counters.little_cluster_utilization_sum, 4.0, 4);
        let instr = counters.instructions_retired.max(1.0);
        let mpki = counters.l2_cache_misses / instr * 1000.0;
        let mem = bucket(mpki, 30.0, 3);
        let cpi = if counters.instructions_retired > 0.0 {
            counters.cpu_cycles / counters.instructions_retired
        } else {
            0.0
        };
        let cpi_b = bucket(cpi, 9.0, 3);
        ((big * 4 + little) * 3 + mem) * 3 + cpi_b
    }
}

fn bucket(value: f64, max: f64, buckets: usize) -> usize {
    let t = (value / max).clamp(0.0, 1.0 - 1e-9);
    (t * buckets as f64) as usize
}

/// A trained tabular Q-learning policy: one Q-table per control knob, acting greedily.
#[derive(Debug, Clone)]
pub struct QPolicy {
    space: DecisionSpace,
    encoder: StateEncoder,
    /// `q_tables[knob][state][action]`.
    q_tables: Vec<Vec<Vec<f64>>>,
    name: String,
}

impl QPolicy {
    /// Creates an untrained (all-zero) policy.
    pub fn new(space: DecisionSpace) -> Self {
        let cards = space.knob_cardinalities();
        let q_tables = cards
            .as_array()
            .iter()
            .map(|&actions| vec![vec![0.0; actions]; StateEncoder::NUM_STATES])
            .collect();
        QPolicy {
            space,
            encoder: StateEncoder,
            q_tables,
            name: "rl".to_string(),
        }
    }

    /// Knob cardinalities of the underlying decision space.
    pub fn knob_cardinalities(&self) -> KnobCardinalities {
        self.space.knob_cardinalities()
    }

    /// Sets the controller name used in run reports.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Greedy action indices for a state.
    pub fn greedy_actions(&self, state: usize) -> [usize; 4] {
        let mut actions = [0usize; 4];
        for (knob, table) in self.q_tables.iter().enumerate() {
            actions[knob] = argmax(&table[state]);
        }
        actions
    }

    fn q(&self, knob: usize, state: usize, action: usize) -> f64 {
        self.q_tables[knob][state][action]
    }

    fn q_mut(&mut self, knob: usize, state: usize, action: usize) -> &mut f64 {
        &mut self.q_tables[knob][state][action]
    }

    fn max_q(&self, knob: usize, state: usize) -> f64 {
        self.q_tables[knob][state]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

impl DrmController for QPolicy {
    fn decide(&mut self, counters: &CounterSnapshot, _previous: &DrmDecision) -> DrmDecision {
        let state = self.encoder.encode(counters);
        let actions = self.greedy_actions(state);
        self.space.decision_from_knob_indices(actions)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, v) in values.iter().enumerate().skip(1) {
        if *v > values[best] {
            best = i;
        }
    }
    best
}

/// Trains a [`QPolicy`] on one application with a scalarized time/energy reward.
///
/// `weights` holds the scalarization (λ_time, λ_energy); the per-epoch reward is the negative
/// weighted sum of the epoch's execution time and energy, each normalized by the value the
/// maximum-performance configuration would achieve on the same epoch so the two terms are
/// commensurate.
///
/// # Panics
///
/// Panics if `weights` does not have exactly two entries.
pub fn train_q_policy(
    platform: &Platform,
    app: &Application,
    weights: &WeightVector,
    config: &RlConfig,
) -> QPolicy {
    assert_eq!(
        weights.len(),
        2,
        "the RL baseline scalarizes exactly two objectives (time, energy)"
    );
    let space = platform.spec().decision_space().clone();
    let mut policy = QPolicy::new(space.clone());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let cards = space.knob_cardinalities().as_array();
    let reference = space.performance_decision();
    let w_time = weights.as_slice()[0];
    let w_energy = weights.as_slice()[1];

    for episode in 0..config.episodes {
        let progress = if config.episodes > 1 {
            episode as f64 / (config.episodes - 1) as f64
        } else {
            1.0
        };
        let epsilon =
            config.epsilon_start + (config.epsilon_final - config.epsilon_start) * progress;

        let mut counters = CounterSnapshot::zeroed();
        let mut state = policy.encoder.encode(&counters);

        for phase in &app.epochs {
            // ε-greedy action per knob.
            let mut actions = policy.greedy_actions(state);
            for (knob, action) in actions.iter_mut().enumerate() {
                if rng.gen::<f64>() < epsilon {
                    *action = rng.gen_range(0..cards[knob]);
                }
            }
            let decision = space.decision_from_knob_indices(actions);
            let result = platform
                .run_epoch(&decision, phase)
                .expect("decisions built from knob indices are always valid");
            let baseline = platform
                .run_epoch(&reference, phase)
                .expect("the performance decision is always valid");

            let reward = -(w_time * result.time_s / baseline.time_s
                + w_energy * result.energy_j / baseline.energy_j);

            counters = result.counters;
            let next_state = policy.encoder.encode(&counters);
            for (knob, &action) in actions.iter().enumerate() {
                let old = policy.q(knob, state, action);
                let target = reward + config.discount * policy.max_q(knob, next_state);
                *policy.q_mut(knob, state, action) = old + config.learning_rate * (target - old);
            }
            state = next_state;
        }
    }
    policy.with_name(format!("rl-{:.2}-{:.2}", w_time, w_energy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_sim::apps::Benchmark;

    #[test]
    fn state_encoder_stays_in_range_and_distinguishes_loads() {
        let enc = StateEncoder;
        let idle = CounterSnapshot::zeroed();
        let busy = CounterSnapshot {
            instructions_retired: 1e8,
            cpu_cycles: 4e8,
            l2_cache_misses: 2e6,
            big_cluster_utilization_per_core: 0.95,
            little_cluster_utilization_sum: 3.8,
            total_chip_power_w: 6.0,
            ..CounterSnapshot::zeroed()
        };
        let a = enc.encode(&idle);
        let b = enc.encode(&busy);
        assert!(a < StateEncoder::NUM_STATES);
        assert!(b < StateEncoder::NUM_STATES);
        assert_ne!(a, b);
    }

    #[test]
    fn untrained_policy_produces_valid_decisions() {
        let space = DecisionSpace::exynos5422();
        let mut policy = QPolicy::new(space.clone());
        let d = policy.decide(&CounterSnapshot::zeroed(), &space.initial_decision());
        assert!(space.validate(&d).is_ok());
        assert_eq!(policy.name(), "rl");
    }

    #[test]
    fn training_produces_a_runnable_policy_with_sensible_bias() {
        let platform = Platform::odroid_xu3();
        let app = Benchmark::Blowfish.application();
        let config = RlConfig {
            episodes: 10,
            ..Default::default()
        };
        // Performance-leaning scalarization vs energy-leaning scalarization.
        let fast = train_q_policy(
            &platform,
            &app,
            &WeightVector::new(vec![0.95, 0.05]),
            &config,
        );
        let frugal = train_q_policy(
            &platform,
            &app,
            &WeightVector::new(vec![0.05, 0.95]),
            &config,
        );
        let mut fast = fast;
        let mut frugal = frugal;
        let run_fast = platform.run_application(&app, &mut fast, 0).unwrap();
        let run_frugal = platform.run_application(&app, &mut frugal, 0).unwrap();
        // The performance-weighted agent should be at least as fast; the energy-weighted
        // agent should not use more energy.
        assert!(
            run_fast.execution_time_s <= run_frugal.execution_time_s * 1.05,
            "time-weighted RL ({}) should not be much slower than energy-weighted RL ({})",
            run_fast.execution_time_s,
            run_frugal.execution_time_s
        );
        assert!(
            run_frugal.energy_j <= run_fast.energy_j * 1.05,
            "energy-weighted RL ({}) should not burn much more energy than time-weighted RL ({})",
            run_frugal.energy_j,
            run_fast.energy_j
        );
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let platform = Platform::odroid_xu3();
        let app = Benchmark::Sha.application();
        let config = RlConfig {
            episodes: 4,
            ..Default::default()
        };
        let w = WeightVector::new(vec![0.5, 0.5]);
        let mut a = train_q_policy(&platform, &app, &w, &config);
        let mut b = train_q_policy(&platform, &app, &w, &config);
        let ra = platform.run_application(&app, &mut a, 1).unwrap();
        let rb = platform.run_application(&app, &mut b, 1).unwrap();
        assert_eq!(ra.execution_time_s, rb.execution_time_s);
        assert_eq!(ra.energy_j, rb.energy_j);
    }

    #[test]
    #[should_panic]
    fn training_rejects_non_biobjective_weights() {
        let platform = Platform::odroid_xu3();
        let app = Benchmark::Sha.application();
        train_q_policy(
            &platform,
            &app,
            &WeightVector::new(vec![0.3, 0.3, 0.4]),
            &RlConfig::default(),
        );
    }
}
