//! Imitation-learning baseline.
//!
//! Following Mandal et al. (reference \[12\] of the paper), the IL baseline first constructs an
//! *Oracle* policy for a given trade-off by searching the configuration space for every
//! decision epoch, then trains the shared MLP policy representation to mimic the Oracle with
//! supervised learning. The paper's criticism — that Oracles are only available for objectives
//! with a per-epoch decomposition and a fixed scalarization — is visible here: the Oracle
//! minimizes a *weighted per-epoch* cost, which is not optimal for every trade-off and cannot
//! be formed at all for non-decomposable objectives like PPW.

use moo::scalarize::WeightVector;
use policy::drm_policy::{DrmPolicy, PolicyArchitecture};
use policy::training::{train_policy, LabelledDecision, TrainingConfig, TrainingReport};
use soc_sim::counters::CounterSnapshot;
use soc_sim::platform::Platform;
use soc_sim::workload::Application;

/// Configuration of the imitation-learning baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct IlConfig {
    /// Stride applied when enumerating the decision space for the Oracle search: 1 searches
    /// all 4 940 configurations per epoch, larger values subsample uniformly to cut cost.
    pub oracle_stride: usize,
    /// Relative noise applied to the per-candidate measurements the Oracle search relies on.
    /// On the real board the Oracle is built from profiled time/power measurements, which are
    /// noisy; a few percent of deterministic pseudo-noise reproduces the resulting label
    /// imperfection.
    pub oracle_measurement_noise: f64,
    /// Supervised-training hyperparameters for the imitation step.
    pub training: TrainingConfig,
    /// Policy architecture to train (the paper shares one architecture across methods).
    pub architecture: PolicyArchitecture,
    /// Seed for policy initialization.
    pub seed: u64,
}

impl Default for IlConfig {
    fn default() -> Self {
        IlConfig {
            oracle_stride: 7,
            oracle_measurement_noise: 0.04,
            training: TrainingConfig::default(),
            architecture: PolicyArchitecture::paper_default(),
            seed: 0x11AB,
        }
    }
}

/// A trained IL policy plus the artefacts of its construction.
#[derive(Debug, Clone)]
pub struct IlOutcome {
    /// The trained policy (usable directly as a [`soc_sim::DrmController`]).
    pub policy: DrmPolicy,
    /// The Oracle dataset the policy was trained on.
    pub dataset: Vec<LabelledDecision>,
    /// Training diagnostics.
    pub report: TrainingReport,
}

/// Builds the Oracle dataset for one application and scalarization.
///
/// The Oracle executes the application epoch by epoch; for each epoch it searches the
/// (possibly strided) decision space for the configuration minimizing
/// `λ_time · time/time_ref + λ_energy · energy/energy_ref`, where the reference values come
/// from the maximum-performance configuration on the same epoch. The chosen configuration is
/// recorded as the label for the counters observed *before* the epoch, and the Oracle then
/// executes it so subsequent epochs see a consistent trajectory.
///
/// # Panics
///
/// Panics if `weights` does not have exactly two entries or `oracle_stride == 0`.
pub fn oracle_dataset(
    platform: &Platform,
    app: &Application,
    weights: &WeightVector,
    oracle_stride: usize,
) -> Vec<LabelledDecision> {
    oracle_dataset_with_noise(platform, app, weights, oracle_stride, 0.0)
}

/// [`oracle_dataset`] with explicit measurement noise on the Oracle's per-candidate profiling
/// measurements (deterministic pseudo-noise keyed on the epoch and candidate indices, so the
/// dataset is reproducible).
///
/// # Panics
///
/// Panics under the same conditions as [`oracle_dataset`].
pub fn oracle_dataset_with_noise(
    platform: &Platform,
    app: &Application,
    weights: &WeightVector,
    oracle_stride: usize,
    measurement_noise: f64,
) -> Vec<LabelledDecision> {
    assert_eq!(weights.len(), 2, "the IL Oracle scalarizes (time, energy)");
    assert!(oracle_stride > 0, "oracle_stride must be positive");
    let space = platform.spec().decision_space().clone();
    let reference = space.performance_decision();
    let w_time = weights.as_slice()[0];
    let w_energy = weights.as_slice()[1];

    let candidates: Vec<_> = space.iter().step_by(oracle_stride).collect();
    let mut counters = CounterSnapshot::zeroed();
    let mut dataset = Vec::with_capacity(app.epoch_count());

    for (epoch_idx, phase) in app.epochs.iter().enumerate() {
        let baseline = platform
            .run_epoch(&reference, phase)
            .expect("the performance decision is always valid");
        let mut best_cost = f64::INFINITY;
        let mut best_decision = reference;
        for (cand_idx, candidate) in candidates.iter().enumerate() {
            let result = platform
                .run_epoch(candidate, phase)
                .expect("enumerated decisions are always valid");
            let noise = 1.0 + measurement_noise * pseudo_noise(epoch_idx as u64, cand_idx as u64);
            let cost = (w_time * result.time_s / baseline.time_s
                + w_energy * result.energy_j / baseline.energy_j)
                * noise;
            if cost < best_cost {
                best_cost = cost;
                best_decision = *candidate;
            }
        }
        let knob_indices = space
            .knob_indices_of(&best_decision)
            .expect("the best decision comes from the decision space");
        dataset.push(LabelledDecision {
            counters,
            knob_indices,
        });
        // Execute the Oracle decision so the next epoch observes its counters.
        counters = platform
            .run_epoch(&best_decision, phase)
            .expect("the best decision is valid")
            .counters;
    }
    dataset
}

/// Deterministic pseudo-noise in `[-1, 1]` derived from the epoch and candidate indices
/// (SplitMix64 finalizer).
fn pseudo_noise(epoch: u64, candidate: u64) -> f64 {
    let mut z = epoch
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(candidate.wrapping_mul(0xbf58476d1ce4e5b9))
        .wrapping_add(0x94d049bb133111eb);
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58476d1ce4e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Trains an imitation-learning policy for one application and scalarization.
///
/// # Panics
///
/// Panics under the same conditions as [`oracle_dataset`].
pub fn train_il_policy(
    platform: &Platform,
    app: &Application,
    weights: &WeightVector,
    config: &IlConfig,
) -> IlOutcome {
    let space = platform.spec().decision_space().clone();
    let dataset = oracle_dataset_with_noise(
        platform,
        app,
        weights,
        config.oracle_stride,
        config.oracle_measurement_noise,
    );
    let mut policy =
        DrmPolicy::random(&space, &config.architecture, config.seed).with_name(format!(
            "il-{:.2}-{:.2}",
            weights.as_slice()[0],
            weights.as_slice()[1]
        ));
    let report = train_policy(&mut policy, &dataset, &config.training);
    IlOutcome {
        policy,
        dataset,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_sim::apps::Benchmark;
    use soc_sim::platform::DrmController;

    fn quick_config() -> IlConfig {
        IlConfig {
            oracle_stride: 37,
            training: TrainingConfig {
                epochs: 25,
                learning_rate: 0.08,
                seed: 3,
            },
            ..Default::default()
        }
    }

    #[test]
    fn oracle_dataset_covers_every_epoch_with_valid_labels() {
        let platform = Platform::odroid_xu3();
        let app = Benchmark::Blowfish.application();
        let weights = WeightVector::new(vec![0.5, 0.5]);
        let dataset = oracle_dataset(&platform, &app, &weights, 61);
        assert_eq!(dataset.len(), app.epoch_count());
        let cards = platform
            .spec()
            .decision_space()
            .knob_cardinalities()
            .as_array();
        for ex in &dataset {
            for (idx, card) in ex.knob_indices.iter().zip(&cards) {
                assert!(idx < card);
            }
        }
    }

    #[test]
    fn oracle_tracks_the_scalarization_preference() {
        // A time-weighted Oracle should pick faster configurations (higher big frequencies)
        // than an energy-weighted Oracle on a compute-bound application.
        let platform = Platform::odroid_xu3();
        let app = Benchmark::Sha.application();
        let space = platform.spec().decision_space().clone();
        let fast = oracle_dataset(&platform, &app, &WeightVector::new(vec![0.95, 0.05]), 53);
        let frugal = oracle_dataset(&platform, &app, &WeightVector::new(vec![0.05, 0.95]), 53);
        let mean_big_freq = |data: &[LabelledDecision]| {
            data.iter()
                .map(|ex| {
                    space
                        .decision_from_knob_indices(ex.knob_indices)
                        .big_freq_mhz as f64
                })
                .sum::<f64>()
                / data.len() as f64
        };
        let f_fast = mean_big_freq(&fast);
        let f_frugal = mean_big_freq(&frugal);
        assert!(
            f_fast > f_frugal,
            "time-weighted Oracle should choose higher big frequencies ({f_fast} vs {f_frugal})"
        );
    }

    #[test]
    fn trained_policy_mimics_the_oracle_reasonably_well() {
        let platform = Platform::odroid_xu3();
        let app = Benchmark::Kmeans.application();
        let weights = WeightVector::new(vec![0.5, 0.5]);
        let outcome = train_il_policy(&platform, &app, &weights, &quick_config());
        assert_eq!(outcome.dataset.len(), app.epoch_count());
        assert!(!outcome.report.loss_history.is_empty());
        let first = outcome.report.loss_history[0];
        let last = *outcome.report.loss_history.last().unwrap();
        assert!(
            last < first,
            "imitation loss should decrease ({first} -> {last})"
        );
    }

    #[test]
    fn trained_policy_is_a_valid_controller() {
        let platform = Platform::odroid_xu3();
        let app = Benchmark::Fft.application();
        let weights = WeightVector::new(vec![0.7, 0.3]);
        let mut outcome = train_il_policy(&platform, &app, &weights, &quick_config());
        assert!(outcome.policy.name().starts_with("il-"));
        let run = platform
            .run_application(&app, &mut outcome.policy, 0)
            .unwrap();
        assert!(run.execution_time_s > 0.0);
        assert!(run.energy_j > 0.0);
    }

    #[test]
    #[should_panic]
    fn oracle_rejects_zero_stride() {
        let platform = Platform::odroid_xu3();
        let app = Benchmark::Sha.application();
        oracle_dataset(&platform, &app, &WeightVector::new(vec![0.5, 0.5]), 0);
    }
}
