//! Baseline DRM approaches the paper compares PaRMIS against (§V-B).
//!
//! * [`rl`] — scalarized reinforcement learning: per-knob tabular Q-learning agents trained
//!   with a linear combination of per-epoch time and energy rewards, following the approach
//!   of Kim et al. and Chen et al. referenced by the paper. A Pareto front is traced by
//!   re-training the agents under a sweep of scalarization weights.
//! * [`il`] — imitation learning: an Oracle policy is constructed per scalarization by
//!   exhaustively searching the decision space for each epoch, and the shared MLP policy
//!   representation is trained to mimic it (Mandal et al. style). As with RL, a weight sweep
//!   produces the baseline's Pareto front.
//! * [`sweep`] — glue that evaluates governors, RL and IL policy sets on arbitrary objective
//!   pairs and collects their Pareto fronts, which is exactly what the paper's figures need
//!   (the RL/IL PPW fronts reuse the energy/time-trained policies, §V-E).
//!
//! # Examples
//!
//! ```no_run
//! use baselines::sweep::{governor_results, rl_front, SweepConfig};
//! use parmis::objective::Objective;
//! use soc_sim::apps::Benchmark;
//!
//! let objectives = Objective::TIME_ENERGY.to_vec();
//! let governors = governor_results(Benchmark::Qsort, &objectives);
//! assert_eq!(governors.len(), 4);
//! let rl = rl_front(Benchmark::Qsort, &objectives, &SweepConfig::default());
//! assert!(rl.len() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod il;
pub mod rl;
pub mod sweep;

pub use il::{train_il_policy, IlConfig};
pub use rl::{train_q_policy, QPolicy, RlConfig};
pub use sweep::{governor_results, il_front, rl_front, SweepConfig};
