//! Offline stand-in for the `rand_distr` crate.
//!
//! Implements exactly the distributions this workspace samples — [`Normal`], [`LogNormal`],
//! [`ChiSquared`] and [`StandardNormal`] — on top of the vendored `rand` stub. Normal draws
//! use the Box–Muller transform (two uniforms per draw, no hidden state), the chi-squared
//! distribution uses the Marsaglia–Tsang gamma sampler, so every draw is a pure function of
//! the generator stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{Rng, RngCore};
use std::fmt;

/// A distribution that can be sampled with any [`RngCore`].
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned when distribution parameters are invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Draws one standard-normal variate via Box–Muller.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Guard the logarithm away from 0: next_f64 is in [0, 1).
    let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The standard normal distribution N(0, 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        standard_normal(rng)
    }
}

/// The normal distribution N(mean, std_dev²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev²)`.
    ///
    /// # Errors
    ///
    /// Returns an error when `std_dev` is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(ParamError("standard deviation must be finite and >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal whose logarithm is `N(mu, sigma²)`.
    ///
    /// # Errors
    ///
    /// Returns an error when `sigma` is negative or not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(ParamError("sigma must be finite and >= 0"));
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// The chi-squared distribution with `k` degrees of freedom (Gamma(k/2, 2)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    k: f64,
}

impl ChiSquared {
    /// Creates a chi-squared distribution with `k > 0` degrees of freedom.
    ///
    /// # Errors
    ///
    /// Returns an error when `k` is not a positive finite number.
    pub fn new(k: f64) -> Result<Self, ParamError> {
        if !k.is_finite() || k <= 0.0 {
            return Err(ParamError("degrees of freedom must be finite and > 0"));
        }
        Ok(ChiSquared { k })
    }
}

impl Distribution<f64> for ChiSquared {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // chi²(k) = Gamma(shape = k/2, scale = 2).
        2.0 * gamma_sample(rng, self.k / 2.0)
    }
}

/// Marsaglia–Tsang sampler for Gamma(shape, 1), with the standard boost for shape < 1.
fn gamma_sample<R: RngCore + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    if shape < 1.0 {
        // Gamma(a) = Gamma(a + 1) * U^(1/a).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments_match_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = Normal::new(3.0, 2.0).unwrap();
        let samples: Vec<f64> = (0..40_000).map(|_| dist.sample(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "variance {var}");
    }

    #[test]
    fn standard_normal_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..40_000)
            .map(|_| StandardNormal.sample(&mut rng))
            .collect();
        let (mean, var) = moments(&samples);
        assert!(mean.abs() < 0.03);
        assert!((var - 1.0).abs() < 0.05);
    }

    #[test]
    fn log_normal_is_positive_with_correct_median() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = LogNormal::new(0.5, 0.25).unwrap();
        let mut samples: Vec<f64> = (0..20_001).map(|_| dist.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 0.5f64.exp()).abs() < 0.05, "median {median}");
    }

    #[test]
    fn chi_squared_mean_equals_degrees_of_freedom() {
        let mut rng = StdRng::seed_from_u64(4);
        let dist = ChiSquared::new(5.0).unwrap();
        let samples: Vec<f64> = (0..40_000).map(|_| dist.sample(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!(samples.iter().all(|&x| x > 0.0));
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 10.0).abs() < 0.6, "variance {var}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
        assert!(ChiSquared::new(0.0).is_err());
    }
}
