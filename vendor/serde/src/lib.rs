//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this crate provides the minimal
//! serialization machinery the workspace needs: a [`Value`] tree, a [`Serialize`] trait that
//! lowers any supported type into it, a [`Deserialize`] marker trait, and `derive` macros for
//! both (re-exported from the companion `serde_derive` proc-macro crate). The vendored
//! `serde_json` crate renders [`Value`] trees as JSON text.
//!
//! Supported derive input is deliberately narrow — structs with named fields and enums with
//! unit variants — which covers every derive in this repository.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The derive macros expand to `::serde::…` paths; alias this crate under its public name so
// the expansions also resolve inside serde's own test suite.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (the stub's analogue of `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (declaration order is preserved).
    Object(Vec<(String, Value)>),
}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Produces the [`Value`] representation of `self`.
    fn to_json_value(&self) -> Value;
}

/// Marker trait emitted by `#[derive(Deserialize)]`.
///
/// Nothing in the workspace deserializes at run time yet; the derive exists so that shared
/// model types can keep their upstream-compatible `#[derive(Serialize, Deserialize)]` spelling.
pub trait Deserialize: Sized {}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);
impl_serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_values() {
        assert_eq!(3u32.to_json_value(), Value::UInt(3));
        assert_eq!((-3i32).to_json_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_json_value(), Value::Float(1.5));
        assert_eq!(true.to_json_value(), Value::Bool(true));
        assert_eq!("hi".to_json_value(), Value::String("hi".into()));
        assert_eq!(None::<u8>.to_json_value(), Value::Null);
    }

    #[test]
    fn collections_lower_recursively() {
        let v = vec![vec![1u8], vec![2, 3]];
        assert_eq!(
            v.to_json_value(),
            Value::Array(vec![
                Value::Array(vec![Value::UInt(1)]),
                Value::Array(vec![Value::UInt(2), Value::UInt(3)]),
            ])
        );
        assert_eq!(
            (1u8, "x").to_json_value(),
            Value::Array(vec![Value::UInt(1), Value::String("x".into())])
        );
    }

    #[test]
    fn derive_handles_structs_and_unit_enums() {
        #[derive(Serialize, Deserialize)]
        enum Kind {
            Big,
            #[allow(dead_code)]
            Little,
        }

        #[derive(Serialize, Deserialize)]
        struct Report {
            name: String,
            kind: Kind,
            values: Vec<f64>,
        }

        let report = Report {
            name: "qsort".into(),
            kind: Kind::Big,
            values: vec![1.0, 2.0],
        };
        let value = report.to_json_value();
        assert_eq!(
            value,
            Value::Object(vec![
                ("name".into(), Value::String("qsort".into())),
                ("kind".into(), Value::String("Big".into())),
                (
                    "values".into(),
                    Value::Array(vec![Value::Float(1.0), Value::Float(2.0)])
                ),
            ])
        );
        fn assert_deserialize<T: Deserialize>() {}
        assert_deserialize::<Report>();
    }
}
