//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this crate provides the minimal
//! serialization machinery the workspace needs: a [`Value`] tree, a [`Serialize`] trait that
//! lowers any supported type into it, a [`Deserialize`] trait that lifts a [`Value`] tree
//! back into a typed value, and `derive` macros for both (re-exported from the companion
//! `serde_derive` proc-macro crate). The vendored `serde_json` crate renders [`Value`] trees
//! as JSON text and parses JSON text back into them.
//!
//! Supported derive input is deliberately narrow — structs with named fields and enums with
//! unit variants — which covers every derive in this repository.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The derive macros expand to `::serde::…` paths; alias this crate under its public name so
// the expansions also resolve inside serde's own test suite.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (the stub's analogue of `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (declaration order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short human-readable name for the value's kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Returns the value stored under `key` if `self` is an object containing it, and
    /// [`Value::Null`] otherwise. Missing fields therefore deserialize like explicit `null`s,
    /// which is what lets `Option` fields be omitted from JSON documents.
    pub fn field(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Produces the [`Value`] representation of `self`.
    fn to_json_value(&self) -> Value;
}

/// Error produced when a [`Value`] tree does not match the shape a type expects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError(message.into())
    }

    /// Creates a type-mismatch error naming what was expected and what was found.
    pub fn unexpected(expected: &str, found: &Value) -> Self {
        DeError(format!("expected {expected}, found {}", found.kind()))
    }

    /// Wraps the error with the struct field it occurred in.
    pub fn in_field(self, type_name: &str, field: &str) -> Self {
        DeError(format!("{type_name}.{field}: {}", self.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization failed: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can reconstruct themselves from a [`Value`] tree (the stub's analogue of
/// upstream `serde::Deserialize`, with [`Value`] playing the role of the data format).
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`], validating shape and numeric ranges.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] if the value's shape or range does not match `Self`.
    fn from_json_value(value: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, DeError> {
                let (i, u) = match value {
                    Value::Int(i) => (Some(*i), None),
                    Value::UInt(u) => (None, Some(*u)),
                    other => return Err(DeError::unexpected(stringify!($t), other)),
                };
                if let Some(i) = i {
                    <$t>::try_from(i)
                        .map_err(|_| DeError::new(format!("{i} out of range for {}", stringify!($t))))
                } else {
                    let u = u.expect("one of the two is set");
                    <$t>::try_from(u)
                        .map_err(|_| DeError::new(format!("{u} out of range for {}", stringify!($t))))
                }
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(DeError::unexpected("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        f64::from_json_value(value).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::unexpected("bool", other)),
        }
    }
}

impl Deserialize for String {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(DeError::unexpected("array", other)),
        }
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);
impl_serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(std::sync::Arc::from(s.as_str())),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        T::from_json_value(value).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_values() {
        assert_eq!(3u32.to_json_value(), Value::UInt(3));
        assert_eq!((-3i32).to_json_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_json_value(), Value::Float(1.5));
        assert_eq!(true.to_json_value(), Value::Bool(true));
        assert_eq!("hi".to_json_value(), Value::String("hi".into()));
        assert_eq!(None::<u8>.to_json_value(), Value::Null);
    }

    #[test]
    fn collections_lower_recursively() {
        let v = vec![vec![1u8], vec![2, 3]];
        assert_eq!(
            v.to_json_value(),
            Value::Array(vec![
                Value::Array(vec![Value::UInt(1)]),
                Value::Array(vec![Value::UInt(2), Value::UInt(3)]),
            ])
        );
        assert_eq!(
            (1u8, "x").to_json_value(),
            Value::Array(vec![Value::UInt(1), Value::String("x".into())])
        );
    }

    #[test]
    fn derive_handles_structs_and_unit_enums() {
        #[derive(Serialize, Deserialize)]
        enum Kind {
            Big,
            #[allow(dead_code)]
            Little,
        }

        #[derive(Serialize, Deserialize)]
        struct Report {
            name: String,
            kind: Kind,
            values: Vec<f64>,
        }

        let report = Report {
            name: "qsort".into(),
            kind: Kind::Big,
            values: vec![1.0, 2.0],
        };
        let value = report.to_json_value();
        assert_eq!(
            value,
            Value::Object(vec![
                ("name".into(), Value::String("qsort".into())),
                ("kind".into(), Value::String("Big".into())),
                (
                    "values".into(),
                    Value::Array(vec![Value::Float(1.0), Value::Float(2.0)])
                ),
            ])
        );
        fn assert_deserialize<T: Deserialize>() {}
        assert_deserialize::<Report>();
    }

    #[test]
    fn derived_types_round_trip_through_value() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        enum Kind {
            Big,
            Little,
        }

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Report {
            name: String,
            kind: Kind,
            count: u32,
            offset: i16,
            scale: Option<f64>,
            values: Vec<f64>,
        }

        let report = Report {
            name: "qsort".into(),
            kind: Kind::Little,
            count: 7,
            offset: -3,
            scale: None,
            values: vec![1.5, -2.25],
        };
        let back = Report::from_json_value(&report.to_json_value()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn deserialization_reports_shape_and_range_errors() {
        assert!(u8::from_json_value(&Value::Int(300)).is_err());
        assert!(u8::from_json_value(&Value::Int(-1)).is_err());
        assert_eq!(u8::from_json_value(&Value::UInt(255)), Ok(255));
        assert_eq!(i64::from_json_value(&Value::UInt(9)), Ok(9));
        assert_eq!(f64::from_json_value(&Value::Int(-2)), Ok(-2.0));
        assert!(String::from_json_value(&Value::Bool(true)).is_err());
        assert_eq!(Option::<u8>::from_json_value(&Value::Null), Ok(None));
        assert_eq!(
            Vec::<u8>::from_json_value(&Value::Array(vec![Value::UInt(1), Value::UInt(2)])),
            Ok(vec![1, 2])
        );
        let err = String::from_json_value(&Value::Null)
            .unwrap_err()
            .in_field("Report", "name");
        assert!(err.to_string().contains("Report.name"));
    }

    #[test]
    fn arc_str_round_trips_as_a_plain_string() {
        use std::sync::Arc;
        let shared: Arc<str> = Arc::from("qsort");
        assert_eq!(shared.to_json_value(), Value::String("qsort".into()));
        let back = Arc::<str>::from_json_value(&Value::String("qsort".into())).unwrap();
        assert_eq!(&*back, "qsort");
        assert!(Arc::<str>::from_json_value(&Value::Bool(true)).is_err());
        // Sized payloads go through the generic Arc<T> impls.
        let boxed: Arc<Vec<u64>> = Arc::new(vec![1, 2]);
        assert_eq!(
            boxed.to_json_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            *Arc::<Vec<u64>>::from_json_value(&boxed.to_json_value()).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn field_lookup_treats_missing_keys_as_null() {
        let obj = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(obj.field("a"), &Value::UInt(1));
        assert_eq!(obj.field("b"), &Value::Null);
        assert_eq!(Value::Bool(true).field("a"), &Value::Null);
        assert_eq!(Value::Null.kind(), "null");
        assert_eq!(Value::Float(1.0).kind(), "float");
    }
}
