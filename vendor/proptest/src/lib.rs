//! Offline stand-in for the `proptest` crate.
//!
//! Provides deterministic random-case property testing behind the subset of the upstream API
//! this workspace uses: the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, range and tuple [`Strategy`]s with
//! [`Strategy::prop_map`], and `prop::collection::{vec, btree_set}`. Unlike upstream there is
//! no shrinking — a failing case panics with the generated inputs left to the assertion
//! message — and case generation is seeded from the test name, so failures reproduce exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Run-time configuration of a [`proptest!`] block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Returns a configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// A size specification for collection strategies: an exact length or a half-open range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            lo: len,
            hi: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..self.hi)
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use std::collections::BTreeSet;

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates ordered sets whose target size is drawn from `size`. If the element
    /// strategy cannot produce enough distinct values the set may come out smaller, mirroring
    /// upstream proptest's best-effort behaviour.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(20) + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};

    /// Namespaced access to strategy constructors (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Builds the deterministic per-test RNG used by [`proptest!`] (FNV-1a over the test name).
pub fn deterministic_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// Declares property tests. Each `fn name(binding in strategy, ...) { body }` item becomes a
/// `#[test]` that checks the body against `cases` random bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat_param in $strategy:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::deterministic_rng(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $( let $pat = $crate::Strategy::generate(&($strategy), &mut rng); )+
                $body
            }
        }
    )*};
}

/// Asserts a property, reporting the failing case via panic.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality of two expressions within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality of two expressions within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn deterministic_rng_depends_on_name_only() {
        use rand::Rng;
        let mut a = crate::deterministic_rng("x");
        let mut b = crate::deterministic_rng("x");
        let mut c = crate::deterministic_rng("y");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        assert_ne!(b.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn btree_set_strategy_reaches_target_size() {
        let strat = prop::collection::btree_set(0u32..1000, 3..12);
        let mut rng = crate::deterministic_rng("set");
        for _ in 0..50 {
            let set: BTreeSet<u32> = Strategy::generate(&strat, &mut rng);
            assert!((3..12).contains(&set.len()), "set size {}", set.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_vectors_respect_bounds(v in prop::collection::vec(-1.0f64..1.0, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn tuple_and_map_strategies_compose(
            (a, b) in (0u8..=4, 1usize..10),
            scaled in (0.0f64..1.0).prop_map(|x| x * 10.0),
        ) {
            prop_assert!(a <= 4);
            prop_assert!((1..10).contains(&b));
            prop_assert!((0.0..10.0).contains(&scaled));
        }
    }
}
