//! Offline stand-in for the `criterion` crate.
//!
//! Benchmarks written against the upstream `criterion_group!`/`criterion_main!` surface run
//! unchanged: each benchmark is timed with `std::time::Instant` over a fixed number of
//! batches (after a short warm-up) and the per-iteration mean, minimum and maximum are
//! printed as `bench-name ... mean min max` lines. There is no statistical analysis or HTML
//! report — the numbers are meant for the repository's own speedup assertions and for eyeball
//! comparisons in CI logs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of a parameterized benchmark (`group/function/parameter`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// When set, `iter` runs the routine exactly once and skips all timing (smoke-test mode,
    /// mirroring upstream criterion's `cargo bench -- --test`).
    test_mode: bool,
    /// Mean per-iteration duration measured by the last `iter` call.
    last_mean: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records its mean, min and max duration. In test mode
    /// (`cargo bench -- --test`) the routine runs exactly once, untimed, so CI can verify
    /// that benchmark code still executes without paying for measurements.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            std::hint::black_box(routine());
            println!("{:<52} ok (test mode, 1 iteration)", "");
            return;
        }
        // Warm-up: a few untimed calls so lazy initialization doesn't pollute the first batch.
        for _ in 0..2 {
            std::hint::black_box(routine());
        }
        // Choose an inner batch count so one batch takes a measurable amount of time.
        let probe = Instant::now();
        std::hint::black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed() / batch as u32;
            total += elapsed;
            min = min.min(elapsed);
            max = max.max(elapsed);
        }
        self.last_mean = total / self.samples as u32;
        println!(
            "{:<52} mean {:>12?}  min {:>12?}  max {:>12?}",
            "", self.last_mean, min, max
        );
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` forwards `--test` to every bench binary; mirror upstream
        // criterion by switching to a run-once smoke mode so CI can keep bench code compiling
        // AND executing without timing anything.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed batches per benchmark.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Returns `true` if the driver is in run-once smoke mode (`--test` was passed).
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        self.run_one_timed(name, f);
    }

    fn run_one_timed<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> Duration {
        print!("{name:<52}\r");
        let mut bencher = Bencher {
            samples: self.sample_size,
            test_mode: self.test_mode,
            last_mean: Duration::ZERO,
        };
        f(&mut bencher);
        // Re-print the name on the measurement line for log-friendly single-line output.
        println!("  ^ {name}");
        bencher.last_mean
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Runs one benchmark and returns the mean per-iteration duration measured by its last
    /// `iter` call ([`Duration::ZERO`] in `--test` smoke mode, where nothing is timed).
    ///
    /// Upstream criterion exposes measurements through its report files; this stub returns
    /// them directly so speedup-ratio reports (`BENCH_*.json`) can reuse the bench loop
    /// instead of duplicating it with ad-hoc `Instant` timing.
    pub fn bench_timed<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> Duration {
        self.run_one_timed(name, f)
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.name);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        self.criterion.run_one(&full, f);
        self
    }

    /// Finishes the group (upstream-compatible no-op).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, optionally with a custom [`Criterion`] config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut counter = 0u64;
        Criterion::default()
            .sample_size(2)
            .bench_function("stub_smoke", |b| b.iter(|| counter += 1));
        assert!(counter > 0);
    }

    #[test]
    fn test_mode_runs_each_routine_exactly_once() {
        let mut criterion = Criterion::default().sample_size(5);
        criterion.test_mode = true;
        assert!(criterion.is_test_mode());
        let mut count = 0u64;
        criterion.bench_function("test_mode_smoke", |b| b.iter(|| count += 1));
        assert_eq!(count, 1, "test mode must not loop the routine");
    }

    #[test]
    fn bench_timed_returns_the_measured_mean() {
        let mean = Criterion::default()
            .sample_size(2)
            .bench_timed("timed_smoke", |b| {
                b.iter(|| std::hint::black_box(std::time::Instant::now()))
            });
        // Timing resolution varies, but a measured mean is never the zero sentinel.
        assert!(mean > Duration::ZERO);

        let mut criterion = Criterion::default().sample_size(2);
        criterion.test_mode = true;
        let mean = criterion.bench_timed("timed_smoke_test_mode", |b| b.iter(|| 1 + 1));
        assert_eq!(mean, Duration::ZERO, "test mode must not time anything");
    }

    #[test]
    fn benchmark_ids_format_with_parameters() {
        let id = BenchmarkId::new("fit", 150);
        assert_eq!(id.name, "fit/150");
    }

    criterion_group!(smoke_group, smoke_target);

    fn smoke_target(c: &mut Criterion) {
        c.bench_function("group_smoke", |b| b.iter(|| std::hint::black_box(1 + 1)));
    }

    #[test]
    fn group_macro_produces_callable() {
        smoke_group();
    }
}
