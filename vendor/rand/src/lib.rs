//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors the small
//! subset of the rand 0.8 API its crates actually use: [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::gen_range`] / [`Rng::gen`] and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across platforms and releases,
//! which is what the reproduction's seed-stability tests rely on. The exact stream differs
//! from upstream `StdRng` (ChaCha12); nothing in this repository depends on upstream
//! streams, only on determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` built from the high 53 bits of [`next_u64`].
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds give equal streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// A half-open or inclusive range that can produce a uniform sample of type `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        // Closing the upper end of a continuous range is measure-zero; reuse the half-open
        // sampler over the same span.
        start + rng.next_f64() * (end - start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be drawn uniformly from their "standard" distribution, mirroring
/// `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range` (e.g. `rng.gen_range(-1.0..1.0)`).
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Draws from the standard distribution of `T` (uniform `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Returns the raw xoshiro256++ state words, e.g. for checkpointing a generator
        /// mid-stream. Restoring the same words with [`StdRng::from_state`] continues the
        /// stream exactly where it left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words previously captured by [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }

        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_samples_stay_in_range_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn integer_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements should move something");
    }
}
