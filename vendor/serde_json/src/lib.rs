//! Offline stand-in for the `serde_json` crate: JSON text rendering of the vendored serde
//! stub's [`serde::Value`] tree. Only serialization is provided — nothing in the workspace
//! parses JSON yet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. Non-finite floats are the only value this stub refuses to render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization failed: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a NaN or infinite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indentation).
///
/// # Errors
///
/// Returns [`Error`] if the value contains a NaN or infinite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0)?;
    Ok(out)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x} cannot be represented")));
            }
            // Keep integral floats recognizably floating-point, like upstream serde_json.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&x.to_string());
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            write_sequence(out, indent, depth, items.len(), '[', ']', |out, i| {
                write_value(out, &items[i], indent, depth + 1)
            })?
        }
        Value::Object(entries) => {
            write_sequence(out, indent, depth, entries.len(), '{', '}', |out, i| {
                let (key, v) = &entries[i];
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1)
            })?
        }
    }
    Ok(())
}

fn write_sequence(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i)?;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_round_trips_simple_values() {
        assert_eq!(to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn pretty_output_indents_nested_structures() {
        #[derive(serde::Serialize)]
        struct Point {
            x: f64,
            label: String,
        }
        let json = to_string_pretty(&Point {
            x: 0.25,
            label: "p".into(),
        })
        .unwrap();
        assert_eq!(json, "{\n  \"x\": 0.25,\n  \"label\": \"p\"\n}");
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn empty_containers_render_compactly() {
        assert_eq!(to_string_pretty(&Vec::<u8>::new()).unwrap(), "[]");
    }
}
