//! Offline stand-in for the `serde_json` crate: JSON text rendering of the vendored serde
//! stub's [`serde::Value`] tree, plus a strict JSON parser for the reverse direction
//! ([`from_str`] / [`from_str_value`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or parse error. On the write side, non-finite floats are the only value this
/// stub refuses to render; on the read side the message carries the byte offset of the fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a NaN or infinite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indentation).
///
/// # Errors
///
/// Returns [`Error`] if the value contains a NaN or infinite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0)?;
    Ok(out)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x} cannot be represented")));
            }
            // Keep integral floats recognizably floating-point, like upstream serde_json.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&x.to_string());
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            write_sequence(out, indent, depth, items.len(), '[', ']', |out, i| {
                write_value(out, &items[i], indent, depth + 1)
            })?
        }
        Value::Object(entries) => {
            write_sequence(out, indent, depth, entries.len(), '{', '}', |out, i| {
                let (key, v) = &entries[i];
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1)
            })?
        }
    }
    Ok(())
}

fn write_sequence(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i)?;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a typed value through its [`serde::Deserialize`] impl.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON, trailing garbage, or a value tree whose shape does
/// not match `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    Ok(T::from_json_value(&from_str_value(s)?)?)
}

/// Parses JSON text into a [`serde::Value`] tree.
///
/// The grammar is standard JSON: `null`, booleans, numbers (integers without a fraction or
/// exponent parse as [`Value::Int`]/[`Value::UInt`], everything else as [`Value::Float`]),
/// strings with the usual escapes (including `\uXXXX` and surrogate pairs), arrays and
/// objects. Duplicate object keys keep every entry, preserving declaration order, which is
/// also what the writer emits.
///
/// # Errors
///
/// Returns [`Error`] with the byte offset of the first malformed construct.
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.fail("trailing characters after the JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, message: &str) -> Error {
        Error(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", byte as char)))
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{keyword}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.expect_keyword("null").map(|()| Value::Null),
            Some(b't') => self.expect_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.fail("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            entries.push((key, self.parse_value()?));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.fail("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain (unescaped, non-terminator) bytes in one go.
            while !matches!(self.peek(), Some(b'"' | b'\\') | None)
                && self.peek().is_some_and(|b| b >= 0x20)
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.fail("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let escape = self.peek().ok_or_else(|| self.fail("truncated escape"))?;
        self.pos += 1;
        match escape {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let high = self.parse_hex4()?;
                let c = if (0xD800..0xDC00).contains(&high) {
                    // Surrogate pair: a second \uXXXX escape must follow.
                    self.expect(b'\\')?;
                    self.expect(b'u')?;
                    let low = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(self.fail("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                    char::from_u32(code)
                } else {
                    char::from_u32(high)
                };
                out.push(c.ok_or_else(|| self.fail("invalid unicode escape"))?);
            }
            _ => return Err(self.fail("unknown escape character")),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.fail("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.fail("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.fail("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        match text.parse::<f64>() {
            // Overflowing literals like 1e999 parse to infinity in Rust; reject them so
            // every accepted document can also be re-serialized (the writer refuses
            // non-finite floats).
            Ok(x) if x.is_finite() => Ok(Value::Float(x)),
            _ => Err(Error(format!("invalid number `{text}` at byte {start}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_round_trips_simple_values() {
        assert_eq!(to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn pretty_output_indents_nested_structures() {
        #[derive(serde::Serialize)]
        struct Point {
            x: f64,
            label: String,
        }
        let json = to_string_pretty(&Point {
            x: 0.25,
            label: "p".into(),
        })
        .unwrap();
        assert_eq!(json, "{\n  \"x\": 0.25,\n  \"label\": \"p\"\n}");
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn empty_containers_render_compactly() {
        assert_eq!(to_string_pretty(&Vec::<u8>::new()).unwrap(), "[]");
    }

    #[test]
    fn parser_handles_every_value_kind() {
        assert_eq!(from_str_value("null").unwrap(), Value::Null);
        assert_eq!(from_str_value(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str_value("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str_value("7").unwrap(), Value::UInt(7));
        assert_eq!(from_str_value("2.0").unwrap(), Value::Float(2.0));
        assert_eq!(from_str_value("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(
            from_str_value("\"a\\\"b\\u00e9\\n\"").unwrap(),
            Value::String("a\"bé\n".into())
        );
        assert_eq!(
            from_str_value("[1, 2]").unwrap(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            from_str_value("{ \"a\": [], \"b\": {} }").unwrap(),
            Value::Object(vec![
                ("a".into(), Value::Array(vec![])),
                ("b".into(), Value::Object(vec![])),
            ])
        );
        // Surrogate pair escape.
        assert_eq!(
            from_str_value("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".into())
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "nul",
            "[1,",
            "{\"a\":}",
            "\"open",
            "{\"a\" 1}",
            "1 2",
            "[1]]",
            "+5",
            "--1",
            "\"\\q\"",
            "\"\\ud83d\"",
        ] {
            assert!(from_str_value(bad).is_err(), "`{bad}` should fail to parse");
        }
        // Overflowing literals would parse to infinity, which the writer cannot re-emit;
        // reject them up front so accepted documents always round-trip.
        for overflow in ["1e999", "-1e999", "[1.0, 1e999]"] {
            assert!(
                from_str_value(overflow).is_err(),
                "`{overflow}` must be rejected, not mapped to infinity"
            );
        }
    }

    #[test]
    fn typed_round_trip_is_lossless() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        enum Mode {
            Fast,
            Slow,
        }

        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Doc {
            name: String,
            mode: Mode,
            threshold: f64,
            retries: u32,
            bias: i32,
            limit: Option<f64>,
            series: Vec<f64>,
        }

        let doc = Doc {
            name: "scenario \"x\"\n".into(),
            mode: Mode::Slow,
            threshold: 0.1 + 0.2, // not exactly representable in decimal: exercises shortest-round-trip
            retries: 3,
            bias: -9,
            limit: Some(85.5),
            series: vec![1.0, 1e-12, -3.25e9],
        };
        for text in [to_string(&doc).unwrap(), to_string_pretty(&doc).unwrap()] {
            let back: Doc = from_str(&text).unwrap();
            assert_eq!(back, doc);
        }
        // Missing optional fields deserialize as None; missing required fields fail loudly.
        let partial: Doc = from_str(
            "{\"name\":\"n\",\"mode\":\"Fast\",\"threshold\":1.0,\"retries\":0,\"bias\":0,\"series\":[]}",
        )
        .unwrap();
        assert_eq!(partial.limit, None);
        let err = from_str::<Doc>("{\"name\":\"n\"}").unwrap_err();
        assert!(err.to_string().contains("Doc.mode"), "{err}");
    }
}
