//! Offline stand-in for the [`signal-hook`](https://docs.rs/signal-hook) crate.
//!
//! Implements the one entry point this workspace uses — [`flag::register`], which arms an
//! [`AtomicBool`](std::sync::atomic::AtomicBool) to flip when a POSIX signal arrives — on
//! top of the classic `signal(2)` libc call (linked by `std` on every supported target).
//! The installed handler is async-signal-safe: it only walks a fixed table of atomics and
//! stores `true` into the registered flags, exactly the discipline the real crate's flag
//! module follows.
//!
//! All `unsafe` in the workspace is confined to this crate (the FFI call and the
//! raw-pointer dereference inside the handler); every consumer crate keeps
//! `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]

/// Signal numbers, mirroring `signal_hook::consts`.
pub mod consts {
    /// Terminal interrupt (Ctrl-C).
    pub const SIGINT: i32 = 2;
    /// Termination request — the "graceful shutdown" signal sent by process managers.
    pub const SIGTERM: i32 = 15;
}

/// Registering [`AtomicBool`](std::sync::atomic::AtomicBool) flags to be set on signal
/// arrival, mirroring `signal_hook::flag`.
pub mod flag {
    use std::io;
    use std::sync::atomic::{AtomicBool, AtomicI32, AtomicPtr, AtomicUsize, Ordering};
    use std::sync::Arc;

    /// One registration: the signal number it listens for plus the leaked flag to set.
    /// `signal == 0` means the slot is unclaimed; the flag pointer is published *before*
    /// the signal number so the handler never observes a claimed slot with a null flag.
    struct Slot {
        signal: AtomicI32,
        flag: AtomicPtr<AtomicBool>,
    }

    // A const (not static) on purpose: it is the repeat-element initializer for SLOTS,
    // so each array element must get its own fresh atomics.
    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY: Slot = Slot {
        signal: AtomicI32::new(0),
        flag: AtomicPtr::new(std::ptr::null_mut()),
    };

    /// Process-wide registration table. Registrations live for the rest of the process
    /// (the real crate hands back an unregister token; this workspace never unregisters),
    /// so a small fixed capacity suffices.
    const MAX_REGISTRATIONS: usize = 16;
    static SLOTS: [Slot; MAX_REGISTRATIONS] = [EMPTY; MAX_REGISTRATIONS];
    static NEXT: AtomicUsize = AtomicUsize::new(0);

    extern "C" {
        /// `sighandler_t signal(int signum, sighandler_t handler)`; both handler values
        /// travel as plain pointer-sized integers so no libc types are needed.
        #[link_name = "signal"]
        fn install_signal_handler(signum: i32, handler: usize) -> usize;
    }

    /// `SIG_ERR`: `(sighandler_t) -1`.
    const SIG_ERR: usize = usize::MAX;

    /// The installed handler. Async-signal-safe by construction: it performs atomic loads
    /// and stores only — no allocation, no locks, no formatting.
    extern "C" fn on_signal(signum: i32) {
        for slot in SLOTS.iter() {
            if slot.signal.load(Ordering::Acquire) == signum {
                let flag = slot.flag.load(Ordering::Acquire);
                if !flag.is_null() {
                    // SAFETY: the pointer came from `Arc::into_raw` in `register` and the
                    // Arc's refcount was intentionally leaked, so the AtomicBool outlives
                    // the process. Signal handlers may race with normal code, which is
                    // exactly what atomics permit.
                    unsafe { (*flag).store(true, Ordering::SeqCst) };
                }
            }
        }
    }

    /// Arranges for `flag` to be set to `true` when `signal` is delivered to the process.
    ///
    /// Multiple flags may be registered for the same signal and one flag may be registered
    /// for multiple signals; all matching flags are set on delivery. Each registration is
    /// permanent (the flag's `Arc` is leaked so the handler can touch it safely forever).
    ///
    /// # Errors
    ///
    /// Returns an error if `signal` is not a valid signal number, if the process-wide
    /// registration table (capacity 16) is full, or if installing the handler fails.
    pub fn register(signal: i32, flag: Arc<AtomicBool>) -> io::Result<()> {
        if !(1..32).contains(&signal) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid signal number {signal}"),
            ));
        }
        let index = NEXT.fetch_add(1, Ordering::SeqCst);
        if index >= MAX_REGISTRATIONS {
            return Err(io::Error::other(format!(
                "signal flag registration table full ({MAX_REGISTRATIONS} slots)"
            )));
        }
        let raw = Arc::into_raw(flag) as *mut AtomicBool;
        SLOTS[index].flag.store(raw, Ordering::Release);
        SLOTS[index].signal.store(signal, Ordering::Release);
        // SAFETY: `on_signal` is a valid `extern "C" fn(i32)` for the whole process
        // lifetime and touches only atomics, so installing it via signal(2) is sound.
        let previous =
            unsafe { install_signal_handler(signal, on_signal as extern "C" fn(i32) as usize) };
        if previous == SIG_ERR {
            // Roll the slot back so the handler ignores it; the leaked Arc stays leaked
            // (one AtomicBool, once per failed registration — negligible).
            SLOTS[index].signal.store(0, Ordering::Release);
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn registered_flag_is_set_when_the_signal_arrives() {
        let flag = Arc::new(AtomicBool::new(false));
        super::flag::register(super::consts::SIGTERM, Arc::clone(&flag)).expect("register");
        assert!(!flag.load(Ordering::SeqCst));

        let status = std::process::Command::new("kill")
            .args(["-TERM", &std::process::id().to_string()])
            .status()
            .expect("spawn kill");
        assert!(status.success(), "kill -TERM failed: {status}");

        // Delivery is asynchronous; poll briefly.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !flag.load(Ordering::SeqCst) {
            assert!(Instant::now() < deadline, "signal never set the flag");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn invalid_signal_numbers_are_rejected() {
        let flag = Arc::new(AtomicBool::new(false));
        assert!(super::flag::register(0, Arc::clone(&flag)).is_err());
        assert!(super::flag::register(-3, Arc::clone(&flag)).is_err());
        assert!(super::flag::register(99, flag).is_err());
    }
}
