//! Derive macros for the vendored `serde` stub.
//!
//! With no crates.io access there is no `syn`/`quote`, so the derive input is parsed directly
//! from the [`proc_macro::TokenStream`]. The supported grammar is the subset the workspace
//! uses: non-generic `struct`s with named fields and non-generic `enum`s whose variants are
//! all unit variants. Anything else produces a `compile_error!` pointing here.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Input {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Skips attributes (`#[...]`), which is also how doc comments appear in the token stream.
fn skip_attributes(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            break;
        }
        tokens.next();
        // The bracketed attribute body.
        tokens.next();
    }
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, …) if present.
fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(ident)) = tokens.peek() {
        if ident.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("expected `struct` or `enum`, found `{kind}`"));
    }

    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };

    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "generic type `{name}` is not supported by the serde stub"
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!(
                    "tuple/unit type `{name}` is not supported by the serde stub"
                ))
            }
            Some(_) => continue,
            None => return Err(format!("missing body for `{name}`")),
        }
    };

    if kind == "struct" {
        Ok(Input::Struct {
            name,
            fields: parse_named_fields(body)?,
        })
    } else {
        Ok(Input::Enum {
            name,
            variants: parse_unit_variants(body)?,
        })
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        let field = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{field}`, found {other:?}")),
        }
        fields.push(field);
        // Skip the type: consume until a comma at angle-bracket depth zero.
        let mut angle_depth = 0i32;
        for token in tokens.by_ref() {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        let variant = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        match tokens.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            other => {
                return Err(format!(
                    "variant `{variant}` is not a unit variant ({other:?}); the serde stub only supports unit enums"
                ))
            }
        }
    }
    Ok(variants)
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});")
        .parse()
        .expect("valid error expansion")
}

/// Derives the stub `serde::Serialize` (lowering into `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input) {
        Err(e) => return compile_error(&e),
        Ok(Input::Struct { name, fields }) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_json_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join("\n")
            )
        }
        Ok(Input::Enum { name, variants }) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!("{name}::{v} => ::serde::Value::String(::std::string::String::from({v:?})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("generated impl parses")
}

/// Derives the stub `serde::Deserialize` (lifting out of `serde::Value`).
///
/// Structs deserialize from objects field by field; fields absent from the object see
/// `Value::Null`, so `Option` fields may be omitted while any other missing field is a type
/// error naming the field. Unit enums deserialize from their variant-name string.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input) {
        Err(e) => return compile_error(&e),
        Ok(Input::Struct { name, fields }) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_json_value(value.field({f:?}))\n\
                             .map_err(|e| e.in_field({name:?}, {f:?}))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if !matches!(value, ::serde::Value::Object(_)) {{\n\
                             return ::std::result::Result::Err(::serde::DeError::unexpected(concat!(\"object for struct \", {name:?}), value));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{\n{}\n}})\n\
                     }}\n\
                 }}",
                entries.join("\n")
            )
        }
        Ok(Input::Enum { name, variants }) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match value {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\n\
                                     ::std::format!(concat!(\"unknown \", {name:?}, \" variant `{{}}`\"), other))),\n\
                             }},\n\
                             other => ::std::result::Result::Err(::serde::DeError::unexpected(concat!(\"string for enum \", {name:?}), other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("generated impl parses")
}
